//! Log-linear-bucket histograms: lock-free recording, mergeable
//! snapshots, percentile readouts.
//!
//! The bucket layout is the HDR-histogram scheme: values below
//! 2^[`SUB_BITS`] get one bucket each (exact), and every further octave
//! `[2^k, 2^{k+1})` is split into 2^[`SUB_BITS`] linear sub-buckets, so
//! the relative width of any bucket is at most `2^-SUB_BITS` (12.5 %
//! at the chosen 3 bits) while the whole `u64` range fits in
//! [`BUCKETS`] = 496 cells. Recording is one relaxed `fetch_add` on the
//! bucket plus bookkeeping atomics — no locks, no allocation — so
//! per-batch and per-request paths can record unconditionally.
//!
//! A [`HistogramSnapshot`] is a plain-data copy: snapshots of different
//! shards [`merge`](HistogramSnapshot::merge) by bucket-wise addition
//! (bit-identical to having recorded into one histogram), and
//! [`since`](HistogramSnapshot::since) takes interval deltas for
//! benchmarks that bracket a measured region.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, bounding relative bucket width by `2^-SUB_BITS` = 12.5 %.
const SUB_BITS: u32 = 3;

/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`: one bucket per value below
/// `SUB` (= 8), then `SUB` buckets for each of the remaining `64 -
/// SUB_BITS` octave groups.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB;

/// Bucket index of a value. Total over `u64`; the result is `< BUCKETS`.
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        // `value >= SUB` so the leading one sits at position `exp >=
        // SUB_BITS`; the SUB_BITS bits below it select the sub-bucket.
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        (((exp - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// Smallest value mapping to bucket `index`.
fn bucket_low(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let exp = (index >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (index & (SUB - 1)) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

/// Largest value mapping to bucket `index`.
fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// Shared histogram state: one atomic per bucket plus bookkeeping.
#[derive(Debug)]
struct Inner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-linear histogram of `u64` values (typically
/// durations in nanoseconds — see the crate's naming conventions).
/// Cloning shares the underlying cells, so the instrumented component
/// and the registry observe one distribution.
///
/// Concurrent `record` calls are never lost and never torn; a
/// [`snapshot`](Self::snapshot) taken concurrently with writers is
/// consistent up to the writes in flight at the instant of the read
/// (its `count` and bucket totals may each lag by at most the number of
/// concurrently recording threads — the bound the model-check test
/// pins down).
///
/// # Examples
///
/// ```
/// let h = telemetry::Histogram::new();
/// for v in 0..1000u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 1000);
/// let p99 = snap.percentile(0.99);
/// assert!((985..=1000).contains(&p99), "p99 {p99}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value: one relaxed `fetch_add` on its bucket plus
    /// count/sum/min/max bookkeeping. Lock-free and allocation-free.
    pub fn record(&self, value: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`,
    /// i.e. after ~584 years).
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a [`SpanTimer`](crate::SpanTimer) that records its
    /// elapsed nanoseconds into this histogram when dropped. Captures
    /// no clock when telemetry is disabled (or under the `noop`
    /// feature, where the guard is zero-sized).
    #[must_use]
    pub fn start_span(&self) -> crate::SpanTimer {
        crate::SpanTimer::starting(self)
    }

    /// A plain-data copy of the current distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        HistogramSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Histogram`] at one instant: bucket counts
/// plus count/sum/min/max, with percentile readouts and shard merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
    /// Per-bucket counts, length [`BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty distribution (what `Histogram::new().snapshot()`
    /// returns).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values (0.0 while empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` ∈ (0, 1]: an upper bound from the
    /// bucket containing the `ceil(q·count)`-th smallest recording,
    /// clamped to the observed `max` (so `percentile(1.0) == max`
    /// exactly). Returns 0 while empty. The bucket bound is within
    /// 12.5 % of the true order statistic.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                return bucket_high(index).min(self.max);
            }
        }
        self.max
    }

    /// The median ([`percentile`](Self::percentile) 0.5).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Folds another shard's snapshot into this one (bucket-wise
    /// addition) — bit-identical to having recorded both shards' values
    /// into a single histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.wrapping_add(*theirs);
        }
    }

    /// The distribution recorded since `earlier` (bucket-wise
    /// saturating difference) — how benchmarks bracket a measured
    /// region on a live, monotone histogram. `min`/`max` remain the
    /// lifetime extremes (the interval's true extremes are not
    /// recoverable from cumulative buckets); percentiles of the
    /// interval are exact up to bucket width.
    #[must_use]
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            // `sum` is wrapping arithmetic mod 2^64, so its delta must
            // wrap too (a saturating difference would zero out whenever
            // the lifetime sum wrapped between the two readings).
            sum: self.sum.wrapping_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in value
    /// order — the compact form the registry renders.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (bucket_high(index), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_total_and_monotone() {
        // Every sampled value maps in range, and bucket index never
        // decreases as values grow.
        let mut last = 0usize;
        let mut v = 0u64;
        loop {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "value {v} -> bucket {index}");
            assert!(index >= last, "index regressed at {v}");
            last = index;
            if v > u64::MAX / 3 {
                break;
            }
            v = v * 3 + 1;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for index in 0..BUCKETS {
            let low = bucket_low(index);
            let high = bucket_high(index);
            assert!(low <= high, "bucket {index}");
            assert_eq!(bucket_index(low), index, "low of {index}");
            assert_eq!(bucket_index(high), index, "high of {index}");
        }
        // Buckets tile u64 with no gaps.
        for index in 1..BUCKETS {
            assert_eq!(bucket_high(index - 1) + 1, bucket_low(index));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 1_000, 123_456, 1 << 40, u64::MAX / 7] {
            let index = bucket_index(v);
            let width = bucket_high(index) - bucket_low(index);
            assert!(
                (width as f64) <= (v as f64) / 8.0 + 1.0,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn percentiles_of_a_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 10_000);
        assert_eq!(snap.percentile(1.0), 10_000);
        for (q, expected) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = snap.percentile(q) as f64;
            assert!(
                got >= expected && got <= expected * 1.13,
                "q={q}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap, HistogramSnapshot::empty());
    }

    #[test]
    fn since_subtracts_an_interval() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1_000);
        h.record(2_000);
        h.record(4_000);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum, 7_000);
        assert!(delta.percentile(0.5) >= 2_000);
    }
}
