//! **telemetry** — the suite's zero-dependency observability layer.
//!
//! Every serving-scale subsystem in this workspace (the [`engine`
//! queue](../engine/index.html), the work-stealing pool, the model's
//! fit/predict/retrain paths) needs to answer "how many, how long, why
//! is p99 high?" without a profiler attached. This crate provides the
//! shared substrate, in the same style as the rest of the workspace: no
//! dependencies, lock-free hot paths, and determinism-preserving (a
//! metric never changes a result, only observes it).
//!
//! - [`Counter`] / [`Gauge`] — lock-free monotone counts and up/down
//!   levels (one relaxed atomic op per update);
//! - [`Histogram`] — log-linear-bucket value distributions (≤ 12.5 %
//!   relative bucket width) with lock-free recording, mergeable
//!   [`HistogramSnapshot`]s and p50/p90/p99/max readouts;
//! - [`Stopwatch`] / [`SpanTimer`] — cheap timing: a stopwatch captures
//!   a start instant (or nothing, when telemetry is disabled), a span
//!   guard records its elapsed nanoseconds into a histogram on drop.
//!   The `noop` cargo feature compiles both into zero-sized inert
//!   stubs for kernel-adjacent paths;
//! - [`Registry`] — names metrics and renders them as Prometheus text
//!   exposition format ([`Registry::render_prometheus`]) or a
//!   structured JSON snapshot ([`Registry::render_json`]).
//!
//! # Runtime knob
//!
//! Setting `GRAPHHD_TELEMETRY=off` (or `0` / `false`) disables every
//! *clock read*: stopwatches capture nothing and span guards record
//! nothing, so latency histograms stay empty while counters and gauges
//! (whose updates are a handful of nanoseconds) keep counting. The
//! value is read once, on first use.
//!
//! # Conventions
//!
//! Metric names are `snake_case`, prefixed by their subsystem
//! (`engine_`, `pool_`, `graphhd_`), with duration histograms suffixed
//! `_ns` (all durations are recorded in nanoseconds). See
//! `docs/TELEMETRY.md` for the full catalog.
//!
//! # Examples
//!
//! ```
//! use telemetry::{Counter, Histogram, Registry};
//!
//! let requests = Counter::new();
//! let latency = Histogram::new();
//! for v in [120u64, 450, 80_000] {
//!     requests.inc();
//!     latency.record(v);
//! }
//! let snap = latency.snapshot();
//! assert_eq!(snap.count, 3);
//! assert_eq!(snap.max, 80_000);
//! assert!(snap.percentile(0.5) >= 450);
//!
//! let registry = Registry::new();
//! registry.register_counter("demo_requests", "Requests observed", &requests);
//! registry.register_histogram("demo_latency_ns", "Request latency", &latency);
//! let text = registry.render_prometheus();
//! telemetry::validate_exposition(&text).expect("well-formed exposition");
//! ```

mod histogram;
mod metrics;
mod registry;
mod timer;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{validate_exposition, Registry};
pub use timer::{SpanTimer, Stopwatch};

use std::sync::OnceLock;

/// Environment variable disabling the timing instrumentation at
/// runtime: `off` / `0` / `false` (case-insensitive) stop all clock
/// reads. Counters and gauges keep updating either way.
pub const TELEMETRY_ENV: &str = "GRAPHHD_TELEMETRY";

/// Whether timing instrumentation is enabled (the default). Decided
/// once, on first use, from [`TELEMETRY_ENV`]; with the `noop` feature
/// the span/timer API compiles out regardless of this value.
#[must_use]
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var(TELEMETRY_ENV)
            .map(|raw| {
                let v = raw.trim().to_ascii_lowercase();
                !matches!(v.as_str(), "off" | "0" | "false")
            })
            .unwrap_or(true)
    })
}
