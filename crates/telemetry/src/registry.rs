//! Metric naming and rendering: a [`Registry`] holds handles to
//! registered metrics and renders them as Prometheus text exposition
//! format or a structured JSON snapshot.
//!
//! Components keep their own metric handles and register clones —
//! registration never changes the recording hot path, it only tells the
//! registry what to read at render time. Names follow the crate
//! conventions (`snake_case`, subsystem prefix, `_ns` suffix for
//! nanosecond histograms); see `docs/TELEMETRY.md` for the catalog.

use crate::{Counter, Gauge, Histogram};
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One registered metric: a name, a help line, and a handle to read.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics that renders to Prometheus text
/// exposition format or JSON. Registration stores a cheap clone of the
/// metric handle; the component keeps recording into its own copy.
///
/// Re-registering a name replaces the previous entry (idempotent
/// registration for components that may be rebuilt).
///
/// # Examples
///
/// ```
/// use telemetry::{Counter, Registry};
///
/// let registry = Registry::new();
/// let served = Counter::new();
/// registry.register_counter("demo_served", "Requests served", &served);
/// served.add(2);
/// let text = registry.render_prometheus();
/// assert!(text.contains("demo_served 2"));
/// telemetry::validate_exposition(&text).expect("well-formed");
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter under `name`.
    pub fn register_counter(&self, name: &str, help: &str, counter: &Counter) {
        self.insert(name, help, Kind::Counter(counter.clone()));
    }

    /// Registers a gauge under `name`.
    pub fn register_gauge(&self, name: &str, help: &str, gauge: &Gauge) {
        self.insert(name, help, Kind::Gauge(gauge.clone()));
    }

    /// Registers a histogram under `name` (by convention suffixed `_ns`
    /// when it records nanoseconds).
    pub fn register_histogram(&self, name: &str, help: &str, histogram: &Histogram) {
        self.insert(name, help, Kind::Histogram(histogram.clone()));
    }

    fn insert(&self, name: &str, help: &str, kind: Kind) {
        let entry = Entry {
            name: name.to_string(),
            help: help.to_string(),
            kind,
        };
        let mut entries = self.lock();
        if let Some(existing) = entries.iter_mut().find(|e| e.name == name) {
            *existing = entry;
        } else {
            entries.push(entry);
        }
    }

    /// Metrics are monitoring data: if a rendering thread panicked with
    /// the lock held we still want every later scrape to succeed, so
    /// poisoning is deliberately ignored rather than propagated.
    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Names of the registered metrics, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.lock().iter().map(|e| e.name.clone()).collect()
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format: `# HELP` / `# TYPE` headers, then samples; histograms
    /// expose cumulative `_bucket{le="…"}` series (non-empty buckets
    /// plus `+Inf`), `_sum`, and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in self.lock().iter() {
            let name = &entry.name;
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            match &entry.kind {
                Kind::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Kind::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Kind::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (upper, n) in snap.nonzero_buckets() {
                        cumulative += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }

    /// Renders every registered metric as a structured JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`,
    /// with each histogram summarized as count/sum/min/max/mean and
    /// p50/p90/p99.
    #[must_use]
    pub fn render_json(&self) -> String {
        let entries = self.lock();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for entry in entries.iter() {
            let name = json_escape(&entry.name);
            match &entry.kind {
                Kind::Counter(c) => {
                    push_field(&mut counters, &format!("\"{name}\": {}", c.get()));
                }
                Kind::Gauge(g) => {
                    push_field(&mut gauges, &format!("\"{name}\": {}", g.get()));
                }
                Kind::Histogram(h) => {
                    let s = h.snapshot();
                    let min = if s.is_empty() { 0 } else { s.min };
                    push_field(
                        &mut histograms,
                        &format!(
                            "\"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {min}, \
                             \"max\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \
                             \"p99\": {}}}",
                            s.count,
                            s.sum,
                            s.max,
                            s.mean(),
                            s.p50(),
                            s.p90(),
                            s.p99(),
                        ),
                    );
                }
            }
        }
        format!(
            "{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \
             \"histograms\": {{{histograms}}}}}"
        )
    }
}

fn push_field(out: &mut String, field: &str) {
    if !out.is_empty() {
        out.push_str(", ");
    }
    out.push_str(field);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Checks that `text` is non-empty, well-formed Prometheus text
/// exposition format: every line is a `# HELP` / `# TYPE` header or a
/// `name{labels} value` sample, every sample's base name was declared
/// by a preceding `# TYPE`, and every value parses as a number. Returns
/// the first problem found.
///
/// # Errors
///
/// Returns a description of the first malformed line (or emptiness).
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let payload = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if name.is_empty() || payload.is_empty() {
                        return Err(format!("line {lineno}: HELP without name or text"));
                    }
                }
                "TYPE" => {
                    if !matches!(payload, "counter" | "gauge" | "histogram" | "summary") {
                        return Err(format!("line {lineno}: unknown TYPE `{payload}`"));
                    }
                    declared.push(name.to_string());
                }
                other => return Err(format!("line {lineno}: unknown comment keyword `{other}`")),
            }
            continue;
        }
        if line.starts_with('#') {
            // Free-form comment lines ("#comment") are permitted.
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: non-numeric value `{value}`"));
        }
        let name_part = series.split('{').next().unwrap_or(series);
        if !valid_metric_name(name_part) {
            return Err(format!("line {lineno}: invalid metric name `{name_part}`"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {lineno}: unterminated label set"));
        }
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| name_part.strip_suffix(suffix))
            .unwrap_or(name_part);
        if !declared.iter().any(|d| d == base || d == name_part) {
            return Err(format!(
                "line {lineno}: sample `{name_part}` has no preceding # TYPE"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> (Registry, Counter, Gauge, Histogram) {
        let registry = Registry::new();
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        registry.register_counter("test_requests", "Requests observed", &c);
        registry.register_gauge("test_depth", "Queue depth", &g);
        registry.register_histogram("test_latency_ns", "Latency", &h);
        (registry, c, g, h)
    }

    #[test]
    fn prometheus_rendering_validates() {
        let (registry, c, g, h) = sample_registry();
        c.add(3);
        g.set(-1);
        h.record(250);
        h.record(9_000);
        let text = registry.render_prometheus();
        validate_exposition(&text).unwrap();
        assert!(text.contains("test_requests 3"));
        assert!(text.contains("test_depth -1"));
        assert!(text.contains("test_latency_ns_count 2"));
        assert!(text.contains("test_latency_ns_sum 9250"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn bucket_series_are_cumulative() {
        let (registry, _c, _g, h) = sample_registry();
        for v in [1u64, 1, 100, 10_000] {
            h.record(v);
        }
        let text = registry.render_prometheus();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("test_latency_ns_bucket"))
            .filter_map(|l| l.rsplit_once(' '))
            .filter_map(|(_, v)| v.parse().ok())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(counts.last(), Some(&4));
    }

    #[test]
    fn json_rendering_is_structured() {
        let (registry, c, g, h) = sample_registry();
        c.inc();
        g.inc();
        h.record(500);
        let json = registry.render_json();
        assert!(json.contains("\"test_requests\": 1"));
        assert!(json.contains("\"test_depth\": 1"));
        assert!(json.contains("\"test_latency_ns\": {\"count\": 1"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn reregistration_replaces() {
        let registry = Registry::new();
        let a = Counter::new();
        let b = Counter::new();
        a.add(5);
        b.add(7);
        registry.register_counter("test_c", "first", &a);
        registry.register_counter("test_c", "second", &b);
        assert_eq!(registry.names(), vec!["test_c".to_string()]);
        assert!(registry.render_prometheus().contains("test_c 7"));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_exposition("").is_err());
        assert!(
            validate_exposition("# TYPE x counter\n").is_err(),
            "no samples"
        );
        assert!(validate_exposition("x 1\n").is_err(), "no TYPE");
        assert!(validate_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_exposition("# TYPE x widget\nx 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\n9bad 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx 1\n").is_ok());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }
}
