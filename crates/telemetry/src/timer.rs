//! Cheap timing primitives: [`Stopwatch`] captures a start instant,
//! [`SpanTimer`] is an RAII guard recording its lifetime into a
//! [`Histogram`](crate::Histogram).
//!
//! Both respect the runtime knob ([`crate::enabled`]): when
//! `GRAPHHD_TELEMETRY=off`, no clock is ever read and nothing is
//! recorded. The `noop` cargo feature goes further and compiles both
//! types down to zero-sized inert stubs, for callers that cannot afford
//! even the disabled-path branch.

#[cfg(not(feature = "noop"))]
mod real {
    use crate::Histogram;
    use std::time::Instant;

    /// A start instant captured for later readout. Holds nothing (and
    /// reads no clock) when telemetry is disabled, so it can be
    /// embedded in per-request structs unconditionally.
    ///
    /// # Examples
    ///
    /// ```
    /// let sw = telemetry::Stopwatch::started();
    /// let h = telemetry::Histogram::new();
    /// sw.observe(&h);
    /// ```
    #[derive(Debug, Clone, Copy)]
    pub struct Stopwatch {
        start: Option<Instant>,
    }

    impl Default for Stopwatch {
        fn default() -> Self {
            Self::started()
        }
    }

    impl Stopwatch {
        /// Captures the current instant (or nothing, when telemetry is
        /// disabled).
        #[must_use]
        pub fn started() -> Self {
            Self {
                start: crate::enabled().then(Instant::now),
            }
        }

        /// A stopwatch that never records, regardless of the runtime
        /// knob. For placeholder slots that are re-armed later.
        #[must_use]
        pub fn unstarted() -> Self {
            Self { start: None }
        }

        /// Nanoseconds elapsed since [`started`](Self::started)
        /// (saturating), or `None` if no instant was captured.
        #[must_use]
        pub fn elapsed_ns(&self) -> Option<u64> {
            self.start
                .map(|start| u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
        }

        /// Records the elapsed nanoseconds into `histogram`, if an
        /// instant was captured. The stopwatch keeps running: calling
        /// `observe` twice records two (growing) readings.
        pub fn observe(&self, histogram: &Histogram) {
            if let Some(ns) = self.elapsed_ns() {
                histogram.record(ns);
            }
        }
    }

    /// An RAII span guard: created over a histogram, records its
    /// elapsed nanoseconds into it when dropped. Create via
    /// [`Histogram::start_span`].
    ///
    /// # Examples
    ///
    /// ```
    /// let h = telemetry::Histogram::new();
    /// {
    ///     let _span = h.start_span();
    ///     // ... timed work ...
    /// }
    /// ```
    #[derive(Debug)]
    pub struct SpanTimer {
        watch: Stopwatch,
        histogram: Histogram,
    }

    impl SpanTimer {
        /// Starts a span over `histogram`.
        #[must_use]
        pub fn starting(histogram: &Histogram) -> Self {
            Self {
                watch: Stopwatch::started(),
                histogram: histogram.clone(),
            }
        }

        /// Drops the guard without recording anything.
        pub fn cancel(mut self) {
            self.watch = Stopwatch::unstarted();
        }
    }

    impl Drop for SpanTimer {
        fn drop(&mut self) {
            self.watch.observe(&self.histogram);
        }
    }
}

#[cfg(feature = "noop")]
mod real {
    use crate::Histogram;

    /// Zero-sized stub (`noop` feature): never reads a clock, never
    /// records.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// Stub: captures nothing.
        #[must_use]
        pub fn started() -> Self {
            Self
        }

        /// Stub: captures nothing.
        #[must_use]
        pub fn unstarted() -> Self {
            Self
        }

        /// Stub: always `None`.
        #[must_use]
        pub fn elapsed_ns(&self) -> Option<u64> {
            None
        }

        /// Stub: records nothing.
        pub fn observe(&self, _histogram: &Histogram) {}
    }

    /// Zero-sized stub (`noop` feature): an inert guard.
    #[derive(Debug)]
    pub struct SpanTimer;

    impl SpanTimer {
        /// Stub: an inert guard.
        #[must_use]
        pub fn starting(_histogram: &Histogram) -> Self {
            Self
        }

        /// Stub: nothing to cancel.
        pub fn cancel(self) {}
    }
}

pub use real::{SpanTimer, Stopwatch};

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.start_span();
            std::hint::black_box(0);
        }
        let snap = h.snapshot();
        // Telemetry defaults to enabled in tests (env not set).
        if crate::enabled() {
            assert_eq!(snap.count, 1);
        }
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let h = Histogram::new();
        let span = h.start_span();
        span.cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn unstarted_stopwatch_observes_nothing() {
        let h = Histogram::new();
        let sw = Stopwatch::unstarted();
        sw.observe(&h);
        assert_eq!(sw.elapsed_ns(), None);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn stopwatch_elapsed_grows() {
        if !crate::enabled() {
            return;
        }
        let sw = Stopwatch::started();
        let a = sw.elapsed_ns().unwrap_or(0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = sw.elapsed_ns().unwrap_or(0);
        assert!(b > a, "elapsed did not grow: {a} -> {b}");
    }
}
