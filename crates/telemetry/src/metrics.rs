//! Lock-free scalar metrics: monotone [`Counter`]s and up/down
//! [`Gauge`]s.
//!
//! Both are cheap-clone handles (`Arc` around one atomic) so the
//! instrumented component and the [`Registry`](crate::Registry) that
//! renders it share the same cell. Updates are `Relaxed`: metrics are
//! monitoring data, not synchronization — readers may observe an update
//! a moment late but never a torn value.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count (requests served, graphs
/// encoded, chunks stolen). Cloning shares the underlying cell.
///
/// # Examples
///
/// ```
/// let served = telemetry::Counter::new();
/// let handle = served.clone();
/// handle.add(3);
/// served.inc();
/// assert_eq!(served.get(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that moves both ways (queue depth, in-flight
/// requests). Cloning shares the underlying cell.
///
/// # Examples
///
/// ```
/// let depth = telemetry::Gauge::new();
/// depth.inc();
/// depth.inc();
/// depth.dec();
/// assert_eq!(depth.get(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (which may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let d = c.clone();
        for _ in 0..10 {
            c.inc();
        }
        d.add(5);
        assert_eq!(c.get(), 15);
        assert_eq!(d.get(), 15);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(7);
        g.dec();
        assert_eq!(g.get(), 6);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
