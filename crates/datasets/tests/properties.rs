//! Property-based tests for the evaluation protocol: invariants of the
//! stratified splitter and the metrics that every experiment relies on.

use datasets::metrics::{accuracy, ConfusionMatrix, Summary};
use datasets::StratifiedKFold;
use proptest::prelude::*;

/// Arbitrary label vectors: 2–4 classes, enough samples to split.
fn arb_labels() -> impl Strategy<Value = (Vec<u32>, usize)> {
    (2usize..5, 10usize..80, any::<u64>(), 2usize..6).prop_map(|(classes, n, seed, k)| {
        let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(seed);
        use prng::WordRng;
        let mut labels: Vec<u32> = (0..n)
            .map(|_| rng.u64_below(classes as u64) as u32)
            .collect();
        // Guarantee every class appears at least once.
        for c in 0..classes as u32 {
            labels[c as usize] = c;
        }
        (labels, k)
    })
}

proptest! {
    #[test]
    fn folds_partition_any_dataset((labels, k) in arb_labels()) {
        let folds = StratifiedKFold::new(k, 3).expect("k >= 2").split(&labels).expect("n >= k");
        prop_assert_eq!(folds.len(), k);
        let mut test_seen = vec![0usize; labels.len()];
        for fold in &folds {
            for &i in &fold.test {
                test_seen[i] += 1;
            }
            // Disjointness within a fold.
            let mut union: Vec<usize> =
                fold.train.iter().chain(&fold.test).copied().collect();
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(union.len(), labels.len());
        }
        prop_assert!(test_seen.iter().all(|&c| c == 1), "each sample tested once");
    }

    #[test]
    fn fold_sizes_are_balanced((labels, k) in arb_labels()) {
        let folds = StratifiedKFold::new(k, 5).expect("k >= 2").split(&labels).expect("n >= k");
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        let max = sizes.iter().copied().max().expect("non-empty");
        let min = sizes.iter().copied().min().expect("non-empty");
        // Round-robin dealing keeps fold sizes within one per class.
        let classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        prop_assert!(max - min <= classes, "sizes {sizes:?}");
    }

    #[test]
    fn stratification_bounds_class_counts((labels, k) in arb_labels()) {
        let folds = StratifiedKFold::new(k, 7).expect("k >= 2").split(&labels).expect("n >= k");
        let classes = labels.iter().copied().max().unwrap_or(0) + 1;
        for class in 0..classes {
            let total = labels.iter().filter(|&&l| l == class).count();
            for fold in &folds {
                let in_fold = fold.test.iter().filter(|&&i| labels[i] == class).count();
                // Perfect stratification: each fold holds floor or ceil of
                // total/k samples of every class.
                prop_assert!(
                    in_fold >= total / k && in_fold <= total.div_ceil(k),
                    "class {class}: {in_fold} of {total} in one of {k} folds"
                );
            }
        }
    }

    #[test]
    fn accuracy_agrees_with_confusion_matrix(
        pairs in prop::collection::vec((0u32..4, 0u32..4), 1..60)
    ) {
        let truth: Vec<u32> = pairs.iter().map(|(t, _)| *t).collect();
        let predicted: Vec<u32> = pairs.iter().map(|(_, p)| *p).collect();
        let mut cm = ConfusionMatrix::new(4);
        cm.record_all(&truth, &predicted);
        prop_assert!((cm.accuracy() - accuracy(&truth, &predicted)).abs() < 1e-12);
        prop_assert_eq!(cm.total(), truth.len());
    }

    #[test]
    fn summary_mean_is_within_range(samples in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let summary = Summary::of(&samples);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(summary.mean >= min - 1e-9 && summary.mean <= max + 1e-9);
        prop_assert!(summary.std_dev >= 0.0);
        prop_assert_eq!(summary.count, samples.len());
    }
}
