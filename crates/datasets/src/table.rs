//! Minimal text-table and CSV rendering for the experiment binaries.

/// Renders an aligned plain-text table. The first row printed is the
/// header, followed by a separator and the data rows.
///
/// # Examples
///
/// ```
/// let text = datasets::table::render_table(
///     &["dataset", "accuracy"],
///     &[vec!["MUTAG".to_string(), "0.85".to_string()]],
/// );
/// assert!(text.contains("MUTAG"));
/// assert!(text.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(columns) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.len()..widths[i] {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as RFC-4180-ish CSV (quotes only when needed).
#[must_use]
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let text = render_table(
            &["a", "long_header"],
            &[
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in all data rows.
        let offset = lines[0].find("long_header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), offset);
        assert_eq!(lines[3].find('2').unwrap(), offset);
    }

    #[test]
    fn table_handles_empty_rows() {
        let text = render_table(&["h"], &[]);
        assert!(text.contains('h'));
    }

    #[test]
    fn csv_escapes_when_needed() {
        let csv = render_csv(
            &["name", "value"],
            &[vec!["a,b".into(), "say \"hi\"".into()]],
        );
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let csv = render_csv(&["x"], &[vec!["plain".into()]]);
        assert_eq!(csv, "x\nplain\n");
    }
}
