//! Synthetic surrogates for the paper's benchmarks.
//!
//! The evaluation machine has no network access, so the six TUDataset
//! benchmarks of Table I cannot be downloaded. Each surrogate reproduces
//! the *published statistics* of its namesake — graph count, class count,
//! average vertex count, average edge count — and injects class-conditional
//! structural signal so that structure-only classifiers (which is all the
//! paper evaluates: labels are stripped, Section V-A) can learn:
//!
//! - each class draws from a different random-graph *family* (Erdős–Rényi,
//!   Barabási–Albert preferential attachment, or a stochastic block
//!   model), giving degree-distribution and community-structure signal;
//! - classes get a mild density multiplier around the Table I target.
//!
//! This makes the discrimination task solvable by all five methods under
//! test at roughly the paper's accuracy levels (GraphHD well above chance
//! on the 2-class sets, everyone near chance on the 6-class ENZYMES).
//!
//! The cost profile of every method in the suite depends only on |V|, |E|
//! and dataset size, all of which match Table I, so timing experiments
//! transfer; accuracy experiments measure the same *task shape*
//! (structure-only discrimination) on matched-size data.
//!
//! [`scaling_dataset`] reproduces the Fig. 4 workload exactly as described:
//! 100 Erdős–Rényi graphs, 2 balanced classes, edge probability 0.05.

use crate::{DatasetError, GraphDataset};
use graphcore::{generate, Graph};
use prng::{mix_seed, Normal, WordRng, Xoshiro256PlusPlus};

/// The published Table I description of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateSpec {
    /// Dataset name as it appears in the paper.
    pub name: &'static str,
    /// Number of graphs.
    pub num_graphs: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Average vertex count.
    pub avg_vertices: f64,
    /// Average edge count.
    pub avg_edges: f64,
}

/// Table I of the paper, verbatim.
pub const TU_SPECS: [SurrogateSpec; 6] = [
    SurrogateSpec {
        name: "DD",
        num_graphs: 1178,
        num_classes: 2,
        avg_vertices: 284.32,
        avg_edges: 715.66,
    },
    SurrogateSpec {
        name: "ENZYMES",
        num_graphs: 600,
        num_classes: 6,
        avg_vertices: 32.63,
        avg_edges: 62.14,
    },
    SurrogateSpec {
        name: "MUTAG",
        num_graphs: 188,
        num_classes: 2,
        avg_vertices: 17.93,
        avg_edges: 19.79,
    },
    SurrogateSpec {
        name: "NCI1",
        num_graphs: 4110,
        num_classes: 2,
        avg_vertices: 29.87,
        avg_edges: 32.3,
    },
    SurrogateSpec {
        name: "PROTEINS",
        num_graphs: 1113,
        num_classes: 2,
        avg_vertices: 39.06,
        avg_edges: 72.82,
    },
    SurrogateSpec {
        name: "PTC_FM",
        num_graphs: 349,
        num_classes: 2,
        avg_vertices: 14.11,
        avg_edges: 14.48,
    },
];

/// Looks up a Table I spec by (case-insensitive) dataset name.
#[must_use]
pub fn spec_by_name(name: &str) -> Option<&'static SurrogateSpec> {
    TU_SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Generates the surrogate for a Table I spec.
///
/// Deterministic in `(spec, seed)`.
#[must_use]
pub fn generate_surrogate(spec: &SurrogateSpec, seed: u64) -> GraphDataset {
    generate_surrogate_sized(spec, seed, spec.num_graphs)
}

/// Generates a surrogate with the same per-graph statistics but only
/// `num_graphs` samples (class-balanced) — the `--quick` mode of the
/// experiment binaries.
///
/// # Panics
///
/// Panics if `num_graphs == 0`.
#[must_use]
pub fn generate_surrogate_sized(
    spec: &SurrogateSpec,
    seed: u64,
    num_graphs: usize,
) -> GraphDataset {
    assert!(num_graphs > 0, "surrogate needs at least one graph");
    let k = spec.num_classes;
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for index in 0..num_graphs {
        // Deal classes round-robin: balanced classes like the originals
        // (the real datasets are roughly balanced; exact proportions are
        // not published in the paper).
        let class = (index % k) as u32;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(seed, index as u64));
        graphs.push(sample_graph(spec, class, &mut rng));
        labels.push(class);
    }
    GraphDataset::new(spec.name, graphs, labels, k).expect("construction is consistent")
}

/// Generates the surrogate by name; `None` for unknown names.
#[must_use]
pub fn by_name(name: &str, seed: u64) -> Option<GraphDataset> {
    spec_by_name(name).map(|s| generate_surrogate(s, seed))
}

/// All six surrogates, in Table I order.
#[must_use]
pub fn all(seed: u64) -> Vec<GraphDataset> {
    TU_SPECS
        .iter()
        .map(|s| generate_surrogate(s, seed))
        .collect()
}

/// Samples one graph of the given class.
///
/// Class `c` draws from family `c mod 3`: Erdős–Rényi, Barabási–Albert
/// (triangle-padded up to the edge target), or a stochastic block model
/// with `2 + c/3` communities. A ±15% density spread across classes adds
/// a secondary signal for `k > 1`.
fn sample_graph<R: WordRng>(spec: &SurrogateSpec, class: u32, rng: &mut R) -> Graph {
    let k = spec.num_classes;

    // Vertex count: lognormal-ish around the Table I mean (σ = 0.25 keeps
    // the spread realistic for molecule/protein data), at least 5 vertices.
    let mut normal = Normal::standard();
    let z = normal.sample(rng);
    let sigma = 0.25f64;
    let n_f = spec.avg_vertices * (sigma * z - sigma * sigma / 2.0).exp();
    let n = (n_f.round() as i64).clamp(5, 4 * spec.avg_vertices.ceil() as i64) as usize;

    // Edge target: the spec's density at this n, nudged by class.
    let spec_pairs = spec.avg_vertices * (spec.avg_vertices - 1.0) / 2.0;
    let base_density = (spec.avg_edges / spec_pairs).min(1.0);
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    let spread = if k > 1 {
        (f64::from(class) - (k as f64 - 1.0) / 2.0) / (k as f64 - 1.0)
    } else {
        0.0
    };
    let m_target = (base_density * (1.0 + 0.15 * spread) * pairs).max(1.0);

    let graph = match class as usize % 3 {
        0 => {
            let p = (m_target / pairs).min(1.0);
            generate::erdos_renyi(n, p, rng).expect("p validated by construction")
        }
        1 => {
            // Preferential attachment: heavy-tailed degrees. Undershoot
            // with the attachment count, then pad with planted triangles
            // (~3 new edges each) toward the edge target.
            let attach = ((m_target / n as f64).floor() as usize).clamp(1, n - 1);
            let graph = generate::barabasi_albert(n, attach, rng)
                .expect("attach validated by construction");
            let deficit = m_target - graph.edge_count() as f64;
            if deficit > 3.0 && n >= 3 {
                generate::with_planted_triangles(&graph, (deficit / 3.0) as usize, rng)
                    .expect("vertex count checked above")
            } else {
                graph
            }
        }
        _ => {
            // Planted communities: within-block density 8x between-block,
            // solved to hit the edge target in expectation.
            let blocks = (2 + class as usize / 3).min(n / 2);
            let mut sizes = vec![n / blocks; blocks];
            for extra in sizes.iter_mut().take(n % blocks) {
                *extra += 1;
            }
            let within_pairs: f64 = sizes
                .iter()
                .map(|&s| s as f64 * (s as f64 - 1.0) / 2.0)
                .sum();
            let between_pairs = pairs - within_pairs;
            let p_in = (m_target / (within_pairs + between_pairs / 8.0)).min(1.0);
            let p_out = (p_in / 8.0).min(1.0);
            let probs: Vec<Vec<f64>> = (0..blocks)
                .map(|a| {
                    (0..blocks)
                        .map(|b| if a == b { p_in } else { p_out })
                        .collect()
                })
                .collect();
            generate::stochastic_block_model(&sizes, &probs, rng)
                .expect("probabilities validated by construction")
        }
    };
    // Generators emit structured vertex orderings (hubs first, contiguous
    // blocks); real benchmark data does not. Shuffle ids so no classifier
    // can exploit the generator's ordering.
    generate::shuffle_vertex_ids(&graph, rng)
}

/// The Fig. 4 scaling workload: `num_graphs` Erdős–Rényi graphs with
/// `num_vertices` vertices each, edge probability 0.05, two balanced
/// classes. The second class carries a light triangle signal so training
/// is non-degenerate (the paper's scaling study measures time, not
/// accuracy).
///
/// # Errors
///
/// Returns [`DatasetError`] only on internal inconsistency (never for
/// valid inputs).
///
/// # Panics
///
/// Panics if `num_graphs == 0` or `num_vertices < 4`.
pub fn scaling_dataset(
    num_vertices: usize,
    num_graphs: usize,
    seed: u64,
) -> Result<GraphDataset, DatasetError> {
    assert!(num_graphs > 0, "scaling dataset needs graphs");
    assert!(
        num_vertices >= 4,
        "scaling dataset needs at least 4 vertices"
    );
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for index in 0..num_graphs {
        let class = (index % 2) as u32;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix_seed(seed, index as u64));
        let g =
            generate::erdos_renyi(num_vertices, 0.05, &mut rng).expect("fixed valid probability");
        let g = if class == 1 {
            generate::with_planted_triangles(&g, num_vertices / 20 + 1, &mut rng)
                .expect("vertex count >= 4")
        } else {
            g
        };
        graphs.push(generate::shuffle_vertex_ids(&g, &mut rng));
        labels.push(class);
    }
    GraphDataset::new(format!("ER-n{num_vertices}"), graphs, labels, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_one() {
        assert_eq!(TU_SPECS.len(), 6);
        let nci1 = spec_by_name("nci1").expect("known name");
        assert_eq!(nci1.num_graphs, 4110);
        assert_eq!(nci1.num_classes, 2);
        assert!(spec_by_name("UNKNOWN").is_none());
    }

    #[test]
    fn surrogate_counts_and_classes_match_spec() {
        for spec in &TU_SPECS {
            // Down-sampled for test speed; statistics checked separately.
            let n = 60.min(spec.num_graphs);
            let ds = generate_surrogate_sized(spec, 7, n);
            assert_eq!(ds.len(), n);
            assert_eq!(ds.num_classes(), spec.num_classes);
            let counts = ds.class_counts();
            let max = counts.iter().copied().max().unwrap();
            let min = counts.iter().copied().min().unwrap();
            assert!(
                max - min <= 1,
                "{}: classes unbalanced {counts:?}",
                spec.name
            );
        }
    }

    #[test]
    fn surrogate_statistics_track_table_one() {
        // Use the full MUTAG-sized surrogate (188 graphs) and check the
        // Table I averages within generous statistical tolerance.
        let spec = spec_by_name("MUTAG").expect("known name");
        let ds = generate_surrogate(spec, 11);
        let stats = ds.stats();
        assert_eq!(stats.graphs, 188);
        let v_err = (stats.avg_vertices - spec.avg_vertices).abs() / spec.avg_vertices;
        let e_err = (stats.avg_edges - spec.avg_edges).abs() / spec.avg_edges;
        assert!(v_err < 0.15, "avg vertices off by {v_err:.2}");
        assert!(e_err < 0.30, "avg edges off by {e_err:.2}");
    }

    #[test]
    fn surrogate_is_deterministic() {
        let spec = spec_by_name("PTC_FM").expect("known name");
        let a = generate_surrogate_sized(spec, 3, 30);
        let b = generate_surrogate_sized(spec, 3, 30);
        assert_eq!(a, b);
        let c = generate_surrogate_sized(spec, 4, 30);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_differ_structurally() {
        // Family signal: the Barabási–Albert class (1) has heavier-tailed
        // degrees than the Erdős–Rényi class (0) at matched density.
        let spec = spec_by_name("NCI1").expect("known name");
        let ds = generate_surrogate_sized(spec, 5, 120);
        let mut max_degree = vec![0.0f64; ds.num_classes()];
        let mut count = vec![0usize; ds.num_classes()];
        for i in 0..ds.len() {
            let c = ds.label(i) as usize;
            let g = ds.graph(i);
            max_degree[c] += g.max_degree() as f64 / g.vertex_count() as f64;
            count[c] += 1;
        }
        for c in 0..ds.num_classes() {
            max_degree[c] /= count[c] as f64;
        }
        assert!(
            max_degree[1] > max_degree[0] * 1.2,
            "degree-tail signal missing: {max_degree:?}"
        );
    }

    #[test]
    fn by_name_and_all_agree() {
        let from_name = by_name("PTC_FM", 9).expect("known name");
        let from_all = &all(9)[5];
        assert_eq!(&from_name, from_all);
    }

    #[test]
    fn scaling_dataset_matches_paper_description() {
        let ds = scaling_dataset(100, 100, 1).expect("valid parameters");
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.class_counts(), vec![50, 50]);
        let stats = ds.stats();
        assert_eq!(stats.avg_vertices, 100.0);
        // E[m] = 0.05 * C(100,2) = 247.5 for class 0; class 1 adds a few.
        assert!(stats.avg_edges > 180.0 && stats.avg_edges < 320.0);
    }

    #[test]
    #[should_panic(expected = "at least 4 vertices")]
    fn scaling_dataset_rejects_tiny_graphs() {
        let _ = scaling_dataset(2, 10, 1);
    }
}
