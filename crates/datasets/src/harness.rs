//! The timed cross-validation evaluator behind every Fig. 3 / Fig. 4
//! number.
//!
//! GraphHD and all four baselines implement [`GraphClassifier`] — the
//! trait now lives in [`graphhd`] (re-exported here for compatibility)
//! so serving code can program against it without pulling in the
//! benchmark layer. The [`evaluate_cv`] driver measures every method
//! under *identical* splits and timing points, which is what makes the
//! training/inference comparisons of the paper's evaluation
//! apples-to-apples.

use crate::metrics::{accuracy, Summary};
use crate::{Fold, GraphDataset, SplitError, StratifiedKFold};
use graphcore::Graph;
use parallel::Pool;
use std::time::Instant;

pub use graphhd::GraphClassifier;

/// Measurements from one cross-validation fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldOutcome {
    /// Test accuracy on the held-out fold.
    pub accuracy: f64,
    /// Wall-clock seconds spent in `fit` (the paper's "training time ...
    /// wall-time for one fold").
    pub train_seconds: f64,
    /// Wall-clock seconds spent predicting the whole test fold.
    pub infer_seconds: f64,
    /// Number of test graphs (to normalise inference time per graph).
    pub test_size: usize,
}

/// All fold measurements for one (method, dataset) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-fold measurements, over all repetitions.
    pub folds: Vec<FoldOutcome>,
}

impl CvReport {
    /// Mean ± std of fold accuracies.
    #[must_use]
    pub fn accuracy(&self) -> Summary {
        Summary::of(&self.folds.iter().map(|f| f.accuracy).collect::<Vec<_>>())
    }

    /// Mean seconds of one fold of training (Fig. 3 middle).
    #[must_use]
    pub fn train_seconds(&self) -> Summary {
        Summary::of(
            &self
                .folds
                .iter()
                .map(|f| f.train_seconds)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean inference seconds *per graph* (Fig. 3 right).
    #[must_use]
    pub fn infer_seconds_per_graph(&self) -> Summary {
        Summary::of(
            &self
                .folds
                .iter()
                .map(|f| {
                    if f.test_size == 0 {
                        0.0
                    } else {
                        f.infer_seconds / f.test_size as f64
                    }
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// Protocol parameters: k-fold CV repeated `repetitions` times.
///
/// The paper uses 10 folds and 3 repetitions (Section V-A); experiment
/// binaries scale these down in `--quick` mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvProtocol {
    /// Number of folds.
    pub folds: usize,
    /// Number of repetitions with different shuffle seeds.
    pub repetitions: usize,
    /// Base seed; repetition `r` shuffles with `seed + r`.
    pub seed: u64,
}

impl Default for CvProtocol {
    fn default() -> Self {
        Self {
            folds: 10,
            repetitions: 3,
            seed: 0x9_D47,
        }
    }
}

/// All folds of the protocol, in the deterministic (repetition, fold)
/// order both evaluators share.
fn protocol_folds(dataset: &GraphDataset, protocol: &CvProtocol) -> Result<Vec<Fold>, SplitError> {
    let mut folds = Vec::with_capacity(protocol.folds * protocol.repetitions);
    for rep in 0..protocol.repetitions {
        let splitter = StratifiedKFold::new(protocol.folds, protocol.seed + rep as u64)?;
        folds.extend(splitter.split(dataset.labels())?);
    }
    Ok(folds)
}

/// Fits and scores one fold, timing both phases. Selecting the fold's
/// graph/label slices happens *outside* the timed sections, so the
/// measured costs are the method's, not the harness's bookkeeping.
fn run_fold(
    classifier: &mut dyn GraphClassifier,
    dataset: &GraphDataset,
    fold: &Fold,
) -> FoldOutcome {
    let train_graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();
    let test_graphs: Vec<&Graph> = fold.test.iter().map(|&i| dataset.graph(i)).collect();

    let started = Instant::now();
    classifier
        .fit(&train_graphs, &train_labels, dataset.num_classes())
        .expect("harness supplies consistent datasets");
    let train_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let predicted = classifier.predict(&test_graphs);
    let infer_seconds = started.elapsed().as_secs_f64();

    let truth: Vec<u32> = fold.test.iter().map(|&i| dataset.label(i)).collect();
    FoldOutcome {
        accuracy: accuracy(&truth, &predicted),
        train_seconds,
        infer_seconds,
        test_size: fold.test.len(),
    }
}

/// Runs the paper's repeated stratified CV protocol for one classifier on
/// one dataset, timing training and inference per fold.
///
/// # Errors
///
/// Returns [`SplitError`] if the dataset cannot be split into the
/// requested number of folds.
pub fn evaluate_cv(
    classifier: &mut dyn GraphClassifier,
    dataset: &GraphDataset,
    protocol: &CvProtocol,
) -> Result<CvReport, SplitError> {
    let outcomes = protocol_folds(dataset, protocol)?
        .iter()
        .map(|fold| run_fold(classifier, dataset, fold))
        .collect();
    Ok(CvReport {
        method: classifier.name().to_string(),
        dataset: dataset.name().to_string(),
        folds: outcomes,
    })
}

/// [`evaluate_cv`] with folds × repetitions evaluated concurrently on
/// `pool`: every fold fits and scores its own clone of `classifier`, so
/// methods whose training is deterministic (all of this suite's) produce
/// **exactly the serial report's accuracies, in the same fold order** —
/// only the wall-clock timings differ, since folds now contend for cores.
///
/// Fold-level parallelism composes with the classifier's own: a GraphHD
/// fold pinned to the same pool trains its batches as nested regions.
///
/// # Errors
///
/// Returns [`SplitError`] if the dataset cannot be split into the
/// requested number of folds.
pub fn evaluate_cv_parallel<C>(
    classifier: &C,
    dataset: &GraphDataset,
    protocol: &CvProtocol,
    pool: &Pool,
) -> Result<CvReport, SplitError>
where
    C: GraphClassifier + Clone + Sync,
{
    let folds = protocol_folds(dataset, protocol)?;
    let outcomes = pool.par_map(&folds, |fold| {
        let mut fold_classifier = classifier.clone();
        run_fold(&mut fold_classifier, dataset, fold)
    });
    Ok(CvReport {
        method: classifier.name().to_string(),
        dataset: dataset.name().to_string(),
        folds: outcomes,
    })
}

/// A trivial majority-class classifier: the chance-level floor every real
/// method must beat, and a harness self-test fixture.
#[derive(Debug, Clone, Default)]
pub struct MajorityClassifier {
    majority: u32,
}

impl GraphClassifier for MajorityClassifier {
    fn name(&self) -> &str {
        "Majority"
    }

    fn fit(
        &mut self,
        _graphs: &[&Graph],
        labels: &[u32],
        num_classes: usize,
    ) -> Result<(), graphhd::Error> {
        let mut counts = vec![0usize; num_classes];
        for &label in labels {
            counts[label as usize] += 1;
        }
        self.majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(c, _)| c as u32)
            .unwrap_or(0);
        Ok(())
    }

    fn predict(&self, graphs: &[&Graph]) -> Vec<u32> {
        vec![self.majority; graphs.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn toy_dataset(n: usize) -> GraphDataset {
        let graphs: Vec<graphcore::Graph> = (0..n).map(|i| generate::path(3 + (i % 4))).collect();
        // Two classes, 2:1 imbalance.
        let labels: Vec<u32> = (0..n as u32).map(|i| u32::from(i % 3 == 0)).collect();
        GraphDataset::new("toy", graphs, labels, 2).expect("valid dataset")
    }

    #[test]
    fn majority_classifier_learns_the_mode() {
        let ds = toy_dataset(30);
        let mut clf = MajorityClassifier::default();
        let all: Vec<&graphcore::Graph> = ds.graphs().iter().collect();
        clf.fit(&all, ds.labels(), ds.num_classes())
            .expect("consistent dataset");
        assert_eq!(clf.predict(&all[..3]), vec![0, 0, 0]);
    }

    #[test]
    fn evaluate_cv_produces_expected_fold_count() {
        let ds = toy_dataset(40);
        let mut clf = MajorityClassifier::default();
        let protocol = CvProtocol {
            folds: 4,
            repetitions: 2,
            seed: 1,
        };
        let report = evaluate_cv(&mut clf, &ds, &protocol).expect("splittable");
        assert_eq!(report.folds.len(), 8);
        assert_eq!(report.method, "Majority");
        assert_eq!(report.dataset, "toy");
        // Majority accuracy should be near the majority fraction (2/3).
        let acc = report.accuracy().mean;
        assert!((acc - 2.0 / 3.0).abs() < 0.15, "accuracy {acc}");
        // Timings are measured and non-negative.
        assert!(report.train_seconds().mean >= 0.0);
        assert!(report.infer_seconds_per_graph().mean >= 0.0);
    }

    #[test]
    fn evaluate_cv_parallel_reproduces_serial_accuracies() {
        let ds = toy_dataset(40);
        let protocol = CvProtocol {
            folds: 4,
            repetitions: 2,
            seed: 1,
        };
        let serial =
            evaluate_cv(&mut MajorityClassifier::default(), &ds, &protocol).expect("splittable");
        for threads in [1usize, 2, 7] {
            let pool = Pool::with_threads(threads);
            let parallel =
                evaluate_cv_parallel(&MajorityClassifier::default(), &ds, &protocol, &pool)
                    .expect("splittable");
            assert_eq!(parallel.method, serial.method);
            assert_eq!(parallel.dataset, serial.dataset);
            assert_eq!(parallel.folds.len(), serial.folds.len());
            for (p, s) in parallel.folds.iter().zip(&serial.folds) {
                assert_eq!(p.accuracy, s.accuracy, "threads {threads}");
                assert_eq!(p.test_size, s.test_size, "threads {threads}");
            }
        }
    }

    #[test]
    fn evaluate_cv_parallel_propagates_split_errors() {
        let ds = toy_dataset(3);
        let protocol = CvProtocol {
            folds: 10,
            repetitions: 1,
            seed: 1,
        };
        assert!(evaluate_cv_parallel(
            &MajorityClassifier::default(),
            &ds,
            &protocol,
            Pool::global()
        )
        .is_err());
    }

    #[test]
    fn evaluate_cv_propagates_split_errors() {
        let ds = toy_dataset(3);
        let mut clf = MajorityClassifier::default();
        let protocol = CvProtocol {
            folds: 10,
            repetitions: 1,
            seed: 1,
        };
        assert!(evaluate_cv(&mut clf, &ds, &protocol).is_err());
    }

    #[test]
    fn default_protocol_matches_paper() {
        let p = CvProtocol::default();
        assert_eq!(p.folds, 10);
        assert_eq!(p.repetitions, 3);
    }

    #[test]
    fn report_summaries_handle_empty_test_folds() {
        let report = CvReport {
            method: "m".into(),
            dataset: "d".into(),
            folds: vec![FoldOutcome {
                accuracy: 1.0,
                train_seconds: 0.5,
                infer_seconds: 0.0,
                test_size: 0,
            }],
        };
        assert_eq!(report.infer_seconds_per_graph().mean, 0.0);
    }
}
