//! Classification metrics and simple statistical summaries.

/// Fraction of positions where `truth` and `predicted` agree.
///
/// # Panics
///
/// Panics if the slices have different lengths. Returns 0.0 for empty
/// inputs.
///
/// # Examples
///
/// ```
/// let acc = datasets::metrics::accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]);
/// assert!((acc - 0.75).abs() < 1e-12);
/// ```
#[must_use]
pub fn accuracy(truth: &[u32], predicted: &[u32]) -> f64 {
    assert_eq!(
        truth.len(),
        predicted.len(),
        "truth and prediction lengths differ"
    );
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// A confusion matrix over `num_classes` classes.
///
/// # Examples
///
/// ```
/// use datasets::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record_all(&[0, 0, 1, 1], &[0, 1, 1, 1]);
/// assert_eq!(cm.count(0, 1), 1);
/// assert!((cm.accuracy() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    #[must_use]
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "confusion matrix needs at least one class");
        Self {
            num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Records one (truth, predicted) pair.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: u32, predicted: u32) {
        assert!(
            (truth as usize) < self.num_classes && (predicted as usize) < self.num_classes,
            "label out of range for {} classes",
            self.num_classes
        );
        self.counts[truth as usize * self.num_classes + predicted as usize] += 1;
    }

    /// Records aligned slices of truths and predictions.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or a label is out of range.
    pub fn record_all(&mut self, truth: &[u32], predicted: &[u32]) {
        assert_eq!(truth.len(), predicted.len(), "lengths differ");
        for (&t, &p) in truth.iter().zip(predicted) {
            self.record(t, p);
        }
    }

    /// Count of samples with true class `truth` predicted as `predicted`.
    #[must_use]
    pub fn count(&self, truth: u32, predicted: u32) -> usize {
        self.counts[truth as usize * self.num_classes + predicted as usize]
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy; 0.0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.num_classes)
            .map(|c| self.counts[c * self.num_classes + c])
            .sum();
        diag as f64 / total as f64
    }

    /// Per-class recall; `None` for classes with no true samples.
    #[must_use]
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        (0..self.num_classes)
            .map(|c| {
                let row: usize = (0..self.num_classes)
                    .map(|p| self.counts[c * self.num_classes + p])
                    .sum();
                if row == 0 {
                    None
                } else {
                    Some(self.counts[c * self.num_classes + c] as f64 / row as f64)
                }
            })
            .collect()
    }
}

/// Mean and sample standard deviation of a set of measurements — the
/// "accuracy ± std over folds" summary the paper's figures report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub std_dev: f64,
    /// Number of samples summarised.
    pub count: usize,
}

impl Summary {
    /// Summarises a slice of measurements. Returns zeros for empty input.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        let count = samples.len();
        if count == 0 {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                count: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / count as f64;
        let std_dev = if count < 2 {
            0.0
        } else {
            let var =
                samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0);
            var.sqrt()
        };
        Self {
            mean,
            std_dev,
            count,
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(accuracy(&[1, 2], &[2, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_all(&[0, 1, 2, 2, 1], &[0, 1, 2, 0, 2]);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.count(2, 0), 1);
        assert_eq!(cm.count(1, 2), 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        let recall = cm.per_class_recall();
        assert_eq!(recall[0], Some(1.0));
        assert_eq!(recall[1], Some(0.5));
        assert_eq!(recall[2], Some(0.5));
    }

    #[test]
    fn confusion_matrix_empty_class_recall_is_none() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.per_class_recall(), vec![None, None]);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn confusion_matrix_rejects_bad_labels() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn summary_degenerate_inputs() {
        assert_eq!(Summary::of(&[]).count, 0);
        let one = Summary::of(&[7.0]);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn summary_displays() {
        let s = Summary::of(&[1.0, 1.0]);
        assert!(s.to_string().contains('±'));
    }
}
