//! Labeled graph collections and their summary statistics.

use graphcore::Graph;

/// An immutable graph classification dataset: graphs plus dense class
/// labels in `0..num_classes`.
///
/// # Examples
///
/// ```
/// use datasets::GraphDataset;
/// use graphcore::Graph;
///
/// let graphs = vec![Graph::empty(3), Graph::empty(4)];
/// let ds = GraphDataset::new("toy", graphs, vec![0, 1], 2)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.label(1), 1);
/// # Ok::<(), datasets::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDataset {
    name: String,
    graphs: Vec<Graph>,
    labels: Vec<u32>,
    num_classes: usize,
}

impl GraphDataset {
    /// Creates a dataset, validating label consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the label vector length differs from the
    /// graph count, a label is `>= num_classes`, or `num_classes == 0`.
    pub fn new(
        name: impl Into<String>,
        graphs: Vec<Graph>,
        labels: Vec<u32>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if num_classes == 0 {
            return Err(DatasetError::ZeroClasses);
        }
        if graphs.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                graphs: graphs.len(),
                labels: labels.len(),
            });
        }
        if let Some((index, &label)) = labels
            .iter()
            .enumerate()
            .find(|(_, &l)| l as usize >= num_classes)
        {
            return Err(DatasetError::LabelOutOfRange {
                index,
                label,
                num_classes,
            });
        }
        Ok(Self {
            name: name.into(),
            graphs,
            labels,
            num_classes,
        })
    }

    /// Builds a dataset from parsed TUDataset files.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on internal inconsistency (which would
    /// indicate a bug in the parser).
    pub fn from_tu(
        name: impl Into<String>,
        data: graphcore::io::TuData,
    ) -> Result<Self, DatasetError> {
        let classes = data.num_classes();
        Self::new(name, data.graphs, data.labels, classes.max(1))
    }

    /// Dataset name (e.g. `"MUTAG"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the dataset has no graphs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The graph at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn graph(&self, index: usize) -> &Graph {
        &self.graphs[index]
    }

    /// The label of the graph at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn label(&self, index: usize) -> u32 {
        self.labels[index]
    }

    /// All graphs, aligned with [`labels`](Self::labels).
    #[must_use]
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// All labels, aligned with [`graphs`](Self::graphs).
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of graphs per class.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// A new dataset containing only the graphs at `indices` (cloned), in
    /// the given order. Useful for quick-mode subsampling.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize], name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            graphs: indices.iter().map(|&i| self.graphs[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Computes the summary statistics reported in the paper's Table I.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let n = self.graphs.len().max(1) as f64;
        let total_vertices: usize = self.graphs.iter().map(Graph::vertex_count).sum();
        let total_edges: usize = self.graphs.iter().map(Graph::edge_count).sum();
        DatasetStats {
            name: self.name.clone(),
            graphs: self.graphs.len(),
            classes: self.num_classes,
            avg_vertices: total_vertices as f64 / n,
            avg_edges: total_edges as f64 / n,
            max_vertices: self
                .graphs
                .iter()
                .map(Graph::vertex_count)
                .max()
                .unwrap_or(0),
        }
    }
}

/// The Table I columns for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of graphs.
    pub graphs: usize,
    /// Number of classes.
    pub classes: usize,
    /// Mean vertex count.
    pub avg_vertices: f64,
    /// Mean edge count.
    pub avg_edges: f64,
    /// Maximum vertex count (drives the basis-hypervector range GraphHD
    /// needs).
    pub max_vertices: usize,
}

impl core::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} graphs, {} classes, avg |V| {:.2}, avg |E| {:.2}",
            self.name, self.graphs, self.classes, self.avg_vertices, self.avg_edges
        )
    }
}

/// Errors produced when constructing a [`GraphDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// `num_classes` was zero.
    ZeroClasses,
    /// The graph and label vectors had different lengths.
    LengthMismatch {
        /// Number of graphs supplied.
        graphs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label was out of range.
    LabelOutOfRange {
        /// Index of the offending sample.
        index: usize,
        /// The label value.
        label: u32,
        /// The declared number of classes.
        num_classes: usize,
    },
}

impl core::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DatasetError::ZeroClasses => write!(f, "a dataset needs at least one class"),
            DatasetError::LengthMismatch { graphs, labels } => {
                write!(f, "{graphs} graphs but {labels} labels")
            }
            DatasetError::LabelOutOfRange {
                index,
                label,
                num_classes,
            } => write!(
                f,
                "label {label} at index {index} out of range for {num_classes} classes"
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Routes dataset-construction failures into the suite's unified error
/// surface (see the matching impl for `SplitError`).
impl From<DatasetError> for graphhd::Error {
    fn from(e: DatasetError) -> Self {
        graphhd::Error::Data {
            context: "dataset construction",
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn toy(n_graphs: usize) -> GraphDataset {
        let graphs: Vec<Graph> = (0..n_graphs).map(|i| generate::path(3 + i)).collect();
        let labels: Vec<u32> = (0..n_graphs as u32).map(|i| i % 2).collect();
        GraphDataset::new("toy", graphs, labels, 2).expect("valid dataset")
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            GraphDataset::new("x", vec![], vec![], 0),
            Err(DatasetError::ZeroClasses)
        ));
        assert!(matches!(
            GraphDataset::new("x", vec![Graph::empty(1)], vec![], 1),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            GraphDataset::new("x", vec![Graph::empty(1)], vec![3], 2),
            Err(DatasetError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn accessors_work() {
        let ds = toy(4);
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.name(), "toy");
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.graph(0).vertex_count(), 3);
        assert_eq!(ds.class_counts(), vec![2, 2]);
    }

    #[test]
    fn stats_match_table_columns() {
        let ds = toy(2); // paths with 3 and 4 vertices: 2 and 3 edges
        let stats = ds.stats();
        assert_eq!(stats.graphs, 2);
        assert_eq!(stats.classes, 2);
        assert!((stats.avg_vertices - 3.5).abs() < 1e-12);
        assert!((stats.avg_edges - 2.5).abs() < 1e-12);
        assert_eq!(stats.max_vertices, 4);
        assert!(stats.to_string().contains("toy"));
    }

    #[test]
    fn subset_keeps_alignment() {
        let ds = toy(6);
        let sub = ds.subset(&[5, 0, 3], "sub");
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(0), ds.label(5));
        assert_eq!(sub.graph(1), ds.graph(0));
        assert_eq!(sub.num_classes(), 2);
    }

    #[test]
    fn from_tu_wires_through() {
        let data = graphcore::io::parse_tudataset("1, 2\n2, 1\n", "1\n1\n2\n", "5\n8\n")
            .expect("valid files");
        let ds = GraphDataset::from_tu("TU", data).expect("valid dataset");
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_classes(), 2);
    }
}
