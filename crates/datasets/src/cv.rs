//! Stratified k-fold cross-validation (the paper's evaluation protocol).

use prng::{WordRng, Xoshiro256PlusPlus};

/// One train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of the training samples.
    pub train: Vec<usize>,
    /// Indices of the held-out test samples.
    pub test: Vec<usize>,
}

/// Stratified k-fold splitter: samples of each class are shuffled and dealt
/// round-robin over the folds, so every fold's class proportions match the
/// dataset's as closely as integer counts allow.
///
/// The paper uses 10-fold cross-validation "because the datasets contain
/// relatively few graphs" (Section V-A); three repetitions with different
/// seeds reproduce its averaging protocol.
///
/// # Examples
///
/// ```
/// use datasets::StratifiedKFold;
///
/// let labels = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
/// let folds = StratifiedKFold::new(5, 42)?.split(&labels)?;
/// assert_eq!(folds.len(), 5);
/// for fold in &folds {
///     assert_eq!(fold.test.len(), 2);
///     assert_eq!(fold.train.len(), 8);
/// }
/// // Fewer than two folds is rejected at construction, not at split time.
/// assert!(StratifiedKFold::new(1, 42).is_err());
/// # Ok::<(), datasets::SplitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedKFold {
    k: usize,
    seed: u64,
}

impl StratifiedKFold {
    /// Creates a splitter producing `k` folds with shuffling seeded by
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::TooFewFolds`] if `k < 2` — cross-validation
    /// needs at least one held-out and one training fold, and catching a
    /// misconfigured harness here beats failing later at `split` time.
    pub fn new(k: usize, seed: u64) -> Result<Self, SplitError> {
        if k < 2 {
            return Err(SplitError::TooFewFolds { k });
        }
        Ok(Self { k, seed })
    }

    /// The number of folds (always ≥ 2).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Splits sample indices `0..labels.len()` into `k` stratified folds.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::TooFewSamples`] if there are fewer samples
    /// than folds.
    pub fn split(&self, labels: &[u32]) -> Result<Vec<Fold>, SplitError> {
        if labels.len() < self.k {
            return Err(SplitError::TooFewSamples {
                samples: labels.len(),
                k: self.k,
            });
        }
        let num_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
        let mut assignments = vec![0usize; labels.len()];
        // Offset the round-robin start per class so small classes do not
        // all pile into fold 0.
        let mut next_fold = 0usize;
        for class in 0..num_classes as u32 {
            let mut members: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == class)
                .map(|(i, _)| i)
                .collect();
            rng.shuffle(&mut members);
            for member in members {
                assignments[member] = next_fold;
                next_fold = (next_fold + 1) % self.k;
            }
        }
        let folds = (0..self.k)
            .map(|fold| {
                let mut train = Vec::new();
                let mut test = Vec::new();
                for (i, &assignment) in assignments.iter().enumerate() {
                    if assignment == fold {
                        test.push(i);
                    } else {
                        train.push(i);
                    }
                }
                Fold { train, test }
            })
            .collect();
        Ok(folds)
    }
}

/// Errors produced by [`StratifiedKFold::new`] and
/// [`StratifiedKFold::split`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SplitError {
    /// Fewer than two folds were requested.
    TooFewFolds {
        /// The requested fold count.
        k: usize,
    },
    /// More folds than samples.
    TooFewSamples {
        /// Number of samples available.
        samples: usize,
        /// The requested fold count.
        k: usize,
    },
}

impl core::fmt::Display for SplitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SplitError::TooFewFolds { k } => {
                write!(f, "cross-validation needs at least 2 folds, got {k}")
            }
            SplitError::TooFewSamples { samples, k } => {
                write!(f, "cannot split {samples} samples into {k} folds")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// Routes fold-splitting failures into the suite's unified error
/// surface (the orphan rule allows this here, next to the source type),
/// so serving code and the harness can use `?` without a bespoke error
/// enum per crate boundary.
impl From<SplitError> for graphhd::Error {
    fn from(e: SplitError) -> Self {
        graphhd::Error::Data {
            context: "stratified k-fold split",
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(counts: &[usize]) -> Vec<u32> {
        counts
            .iter()
            .enumerate()
            .flat_map(|(class, &count)| std::iter::repeat_n(class as u32, count))
            .collect()
    }

    #[test]
    fn split_errors_route_into_the_unified_error_surface() {
        let err = StratifiedKFold::new(1, 0).unwrap_err();
        let unified: graphhd::Error = err.into();
        assert!(matches!(
            unified,
            graphhd::Error::Data {
                context: "stratified k-fold split",
                ..
            }
        ));
    }

    #[test]
    fn rejects_degenerate_parameters() {
        // k < 2 fails at construction …
        assert_eq!(
            StratifiedKFold::new(0, 0),
            Err(SplitError::TooFewFolds { k: 0 })
        );
        assert_eq!(
            StratifiedKFold::new(1, 0),
            Err(SplitError::TooFewFolds { k: 1 })
        );
        // … and too few samples still fails at split time.
        assert_eq!(
            StratifiedKFold::new(5, 0).unwrap().split(&[0, 1, 0]),
            Err(SplitError::TooFewSamples { samples: 3, k: 5 })
        );
    }

    #[test]
    fn folds_partition_the_dataset() {
        let labels = labels(&[17, 13]);
        let folds = StratifiedKFold::new(5, 7).unwrap().split(&labels).unwrap();
        let mut seen = vec![false; labels.len()];
        for fold in &folds {
            for &i in &fold.test {
                assert!(!seen[i], "index {i} in two test folds");
                seen[i] = true;
            }
            // train = complement of test
            let mut union: Vec<usize> = fold.train.iter().chain(&fold.test).copied().collect();
            union.sort_unstable();
            assert_eq!(union, (0..labels.len()).collect::<Vec<_>>());
        }
        assert!(seen.iter().all(|&s| s), "every index must be tested once");
    }

    #[test]
    fn folds_are_stratified() {
        let labels = labels(&[50, 50]);
        let folds = StratifiedKFold::new(10, 3).unwrap().split(&labels).unwrap();
        for fold in &folds {
            let ones = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(fold.test.len(), 10);
            assert_eq!(ones, 5, "each fold holds 5 of each class");
        }
    }

    #[test]
    fn uneven_classes_spread_over_folds() {
        // 3 samples of class 1 over 3 folds: each fold sees exactly one.
        let labels = labels(&[9, 3]);
        let folds = StratifiedKFold::new(3, 11).unwrap().split(&labels).unwrap();
        for fold in &folds {
            let minority = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(minority, 1);
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let labels = labels(&[20, 20]);
        let a = StratifiedKFold::new(5, 1).unwrap().split(&labels).unwrap();
        let b = StratifiedKFold::new(5, 1).unwrap().split(&labels).unwrap();
        let c = StratifiedKFold::new(5, 2).unwrap().split(&labels).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn works_when_a_class_is_smaller_than_k() {
        let labels = labels(&[20, 2]);
        let folds = StratifiedKFold::new(5, 5).unwrap().split(&labels).unwrap();
        let total_minority: usize = folds
            .iter()
            .map(|f| f.test.iter().filter(|&&i| labels[i] == 1).count())
            .sum();
        assert_eq!(total_minority, 2);
    }
}
