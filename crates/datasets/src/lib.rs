//! Benchmark datasets and evaluation protocol for the GraphHD reproduction.
//!
//! This crate is the shared experimental substrate of the suite:
//!
//! - [`GraphDataset`] — an immutable labeled graph collection with
//!   [`DatasetStats`] matching the columns of the paper's Table I.
//! - [`surrogate`] — synthetic stand-ins for the six TUDataset benchmarks
//!   (the evaluation machine has no network access, so experiments run on
//!   statistics-matched synthetic stand-ins; see `README.md`) plus the Erdős–Rényi scaling datasets of the
//!   paper's Fig. 4.
//! - [`StratifiedKFold`] — the 10-fold cross-validation splitter of the
//!   paper's protocol (Section V-A).
//! - [`metrics`] — accuracy, confusion matrices and mean/std summaries.
//! - [`harness`] — the [`GraphClassifier`](harness::GraphClassifier) trait
//!   that GraphHD and every baseline implement, and the timed CV evaluator
//!   that regenerates Fig. 3's accuracy/training-time/inference-time data.
//! - [`table`] — plain-text/CSV rendering used by the experiment binaries.
//!
//! # Examples
//!
//! ```
//! use datasets::surrogate;
//!
//! let mutag = surrogate::by_name("MUTAG", 42).expect("known dataset");
//! let stats = mutag.stats();
//! assert_eq!(stats.graphs, 188);
//! assert_eq!(stats.classes, 2);
//! ```

mod cv;
mod dataset;
pub mod harness;
pub mod metrics;
pub mod surrogate;
pub mod table;

pub use cv::{Fold, SplitError, StratifiedKFold};
pub use dataset::{DatasetError, DatasetStats, GraphDataset};
