//! Multi-query similarity scoring: the blocked `ClassMemory` engine
//! versus the naive per-class cosine loop it replaces in
//! `GraphHdModel::scores_encoded`.
//!
//! The class counts cover the suite's real datasets (2 = binary
//! MUTAG-style tasks) plus block-boundary and many-class shapes (8 = one
//! full lane block, 23 = three blocks with an odd tail, the satellite
//! equivalence grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdvec::{ClassMemory, Hypervector, ItemMemory};
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    let dim = 10_000;
    let memory = ItemMemory::new(dim, 7).expect("valid dimension");
    let query = memory.hypervector(1_000_000);
    for &classes in &[2usize, 8, 23] {
        let class_vectors: Vec<Hypervector> =
            (0..classes as u64).map(|i| memory.hypervector(i)).collect();
        let class_memory = ClassMemory::from_vectors(&class_vectors).expect("non-empty");

        // The pre-PR4 scoring loop: one dispatched hamming per class,
        // query words re-read every time.
        group.bench_with_input(
            BenchmarkId::new("cosine_loop", classes),
            &classes,
            |bencher, _| {
                bencher.iter(|| -> f64 {
                    class_vectors
                        .iter()
                        .map(|cv| cv.cosine(black_box(&query)))
                        .sum()
                });
            },
        );
        // The adaptive engine: per-vector below one full block (a block
        // kernel always pays for 8 lanes), blocked at >= 8 classes where
        // each query word streams once across an 8-lane block and the
        // accumulators live in SIMD registers.
        group.bench_with_input(
            BenchmarkId::new("scores_many", classes),
            &classes,
            |bencher, _| {
                let mut scores = Vec::with_capacity(classes);
                bencher.iter(|| {
                    class_memory.cosine_many_into(black_box(&query), &mut scores);
                    black_box(scores[0])
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
