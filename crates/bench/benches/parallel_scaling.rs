//! Thread-scaling of the pooled pipeline at pinned parallelism degrees
//! (1/2/4/8): end-to-end fit+predict on the Fig. 4 scaling workload, plus
//! the three component hot paths (batch encoding, WL Gram matrix,
//! PageRank batches). Every entry is bit-identical across thread counts —
//! only the wall clock may move — so the entries measure the runtime, not
//! the numerics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::StratifiedKFold;
use graphcore::{pagerank_ranks_batch_with_pool, Graph, PageRankConfig};
use graphhd::{GraphEncoder, GraphHdConfig, GraphHdModel};
use parallel::Pool;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use wlkernels::{compute_gram_with_threads, wl_features, KernelKind};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn scaling_workload() -> (Vec<Graph>, Vec<u32>, Vec<Graph>, usize) {
    // The Fig. 4 workload: 40 Erdős–Rényi graphs of 50 vertices, split
    // once; fit on the training fold, predict the held-out fold.
    let dataset = datasets::surrogate::scaling_dataset(50, 40, 9).expect("valid parameters");
    let folds = StratifiedKFold::new(4, 1)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    let train_graphs: Vec<Graph> = folds[0]
        .train
        .iter()
        .map(|&i| dataset.graph(i).clone())
        .collect();
    let train_labels: Vec<u32> = folds[0].train.iter().map(|&i| dataset.label(i)).collect();
    let test_graphs: Vec<Graph> = folds[0]
        .test
        .iter()
        .map(|&i| dataset.graph(i).clone())
        .collect();
    (
        train_graphs,
        train_labels,
        test_graphs,
        dataset.num_classes(),
    )
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    let (train_graphs, train_labels, test_graphs, num_classes) = scaling_workload();
    let config = GraphHdConfig::default();

    for &threads in &THREADS {
        let pool = Arc::new(Pool::with_threads(threads));

        // End-to-end: encode + bundle the training fold, then classify
        // the test fold — the acceptance workload for BENCH_pr3.json.
        group.bench_with_input(
            BenchmarkId::new("fit_predict", threads),
            &threads,
            |bencher, _| {
                bencher.iter(|| {
                    let encoder = GraphEncoder::new(config)
                        .expect("valid config")
                        .with_pool(Arc::clone(&pool));
                    let model = GraphHdModel::fit_with_encoder(
                        encoder,
                        black_box(&train_graphs),
                        &train_labels,
                        num_classes,
                    )
                    .expect("valid inputs");
                    model.predict_batch(black_box(&test_graphs))
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("encode_batch", threads),
            &threads,
            |bencher, _| {
                let encoder = GraphEncoder::new(config)
                    .expect("valid config")
                    .with_pool(Arc::clone(&pool));
                bencher.iter(|| encoder.encode_all(black_box(&train_graphs)));
            },
        );

        group.bench_with_input(
            BenchmarkId::new("pagerank_batch", threads),
            &threads,
            |bencher, _| {
                let pr = PageRankConfig::default();
                bencher
                    .iter(|| pagerank_ranks_batch_with_pool(black_box(&train_graphs), &pr, &pool));
            },
        );
    }

    // The Gram matrix keeps its explicit-thread-count API; its transient
    // pool is part of what this entry measures.
    let features = wl_features(&train_graphs, 3).maps;
    for &threads in &THREADS {
        group.bench_with_input(
            BenchmarkId::new("wl_gram", threads),
            &threads,
            |bencher, _| {
                bencher.iter(|| {
                    compute_gram_with_threads(black_box(&features), KernelKind::Subtree, threads)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
