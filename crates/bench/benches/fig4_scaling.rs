//! Criterion counterpart of Fig. 4: training time versus graph size on
//! the Erdős–Rényi scaling workload for the paper's three methods
//! (GraphHD, GIN-ε, WL-OA). The `fig4_scaling` binary sweeps the full
//! size range; this bench pins tight measurements at two sizes.

use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::harness::GraphClassifier;
use datasets::{surrogate, StratifiedKFold};
use graphhd::GraphHdClassifier;
use std::time::Duration;
use tinynn::gin::GinConfig;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    for &n in &[50usize, 200] {
        let dataset = surrogate::scaling_dataset(n, 40, 9).expect("valid scaling parameters");
        let folds = StratifiedKFold::new(4, 1)
            .expect("at least two folds")
            .split(dataset.labels())
            .expect("splittable");
        let train: Vec<&graphcore::Graph> =
            folds[0].train.iter().map(|&i| dataset.graph(i)).collect();
        let train_labels: Vec<u32> = folds[0].train.iter().map(|&i| dataset.label(i)).collect();

        group.bench_with_input(BenchmarkId::new("GraphHD", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut clf = GraphHdClassifier::default();
                clf.fit(&train, &train_labels, dataset.num_classes())
                    .expect("consistent dataset");
            });
        });
        group.bench_with_input(BenchmarkId::new("GIN-e", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut clf = GinBaseline::new(GinConfig {
                    epochs: 10,
                    batch_size: 16,
                    ..GinConfig::default()
                });
                clf.fit(&train, &train_labels, dataset.num_classes())
                    .expect("consistent dataset");
            });
        });
        group.bench_with_input(BenchmarkId::new("WL-OA", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_assignment());
                clf.fit(&train, &train_labels, dataset.num_classes())
                    .expect("consistent dataset");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
