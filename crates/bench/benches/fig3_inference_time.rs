//! Criterion counterpart of Fig. 3 (right): per-graph inference time per
//! method, measured on trained models.

use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::harness::GraphClassifier;
use datasets::{surrogate, StratifiedKFold};
use graphhd::GraphHdClassifier;
use std::hint::black_box;
use std::time::Duration;

fn bench_inference(c: &mut Criterion) {
    let spec = surrogate::spec_by_name("MUTAG").expect("known dataset");
    let dataset = surrogate::generate_surrogate_sized(spec, 11, 60);
    let folds = StratifiedKFold::new(3, 1)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    let train: Vec<&graphcore::Graph> = folds[0].train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = folds[0].train.iter().map(|&i| dataset.label(i)).collect();
    let test: Vec<&graphcore::Graph> = folds[0].test.iter().map(|&i| dataset.graph(i)).collect();

    let mut graphhd = GraphHdClassifier::default();
    graphhd
        .fit(&train, &train_labels, dataset.num_classes())
        .expect("consistent dataset");
    let mut wl = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
    wl.fit(&train, &train_labels, dataset.num_classes())
        .expect("consistent dataset");
    let mut oa = WlSvmClassifier::new(WlSvmConfig::fast_assignment());
    oa.fit(&train, &train_labels, dataset.num_classes())
        .expect("consistent dataset");
    let mut gin = GinBaseline::quick(false);
    gin.fit(&train, &train_labels, dataset.num_classes())
        .expect("consistent dataset");
    let mut gin_jk = GinBaseline::quick(true);
    gin_jk
        .fit(&train, &train_labels, dataset.num_classes())
        .expect("consistent dataset");

    let mut group = c.benchmark_group("fig3_inference_time");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    let entries: Vec<(&str, &dyn GraphClassifier)> = vec![
        ("GraphHD", &graphhd),
        ("1-WL", &wl),
        ("WL-OA", &oa),
        ("GIN-e", &gin),
        ("GIN-e-JK", &gin_jk),
    ];
    for (name, clf) in entries {
        group.bench_function(name, |bencher| {
            bencher.iter(|| clf.predict(black_box(&test)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
