//! Criterion counterpart of Fig. 3 (middle): one fold of training per
//! method on a benchmark-sized surrogate. The experiment binary `fig3`
//! produces the full table; this bench gives statistically tight timings
//! for the per-method comparison on one dataset.

use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::harness::GraphClassifier;
use datasets::{surrogate, StratifiedKFold};
use graphhd::GraphHdClassifier;
use std::time::Duration;

fn bench_training(c: &mut Criterion) {
    let spec = surrogate::spec_by_name("MUTAG").expect("known dataset");
    let dataset = surrogate::generate_surrogate_sized(spec, 11, 60);
    let folds = StratifiedKFold::new(3, 1)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    let train: Vec<&graphcore::Graph> = folds[0].train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = folds[0].train.iter().map(|&i| dataset.label(i)).collect();

    let mut group = c.benchmark_group("fig3_train_time");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("GraphHD", |bencher| {
        bencher.iter(|| {
            let mut clf = GraphHdClassifier::default();
            clf.fit(&train, &train_labels, dataset.num_classes())
                .expect("consistent dataset");
        });
    });
    group.bench_function("1-WL", |bencher| {
        bencher.iter(|| {
            let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_subtree());
            clf.fit(&train, &train_labels, dataset.num_classes())
                .expect("consistent dataset");
        });
    });
    group.bench_function("WL-OA", |bencher| {
        bencher.iter(|| {
            let mut clf = WlSvmClassifier::new(WlSvmConfig::fast_assignment());
            clf.fit(&train, &train_labels, dataset.num_classes())
                .expect("consistent dataset");
        });
    });
    group.bench_function("GIN-e", |bencher| {
        bencher.iter(|| {
            let mut clf = GinBaseline::quick(false);
            clf.fit(&train, &train_labels, dataset.num_classes())
                .expect("consistent dataset");
        });
    });
    group.bench_function("GIN-e-JK", |bencher| {
        bencher.iter(|| {
            let mut clf = GinBaseline::quick(true);
            clf.fit(&train, &train_labels, dataset.num_classes())
                .expect("consistent dataset");
        });
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
