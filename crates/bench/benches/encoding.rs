//! Micro-benchmarks for GraphHD's encoding path (paper Section IV cost):
//! PageRank and full graph encoding versus graph size on the Fig. 4
//! Erdős–Rényi workload (p = 0.05).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphcore::{generate, pagerank, PageRankConfig};
use graphhd::{GraphEncoder, GraphHdConfig};
use prng::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    let encoder = GraphEncoder::new(GraphHdConfig::default()).expect("valid config");
    let pr_config = PageRankConfig::default();
    for &n in &[50usize, 200, 800] {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(n as u64);
        let graph = generate::erdos_renyi(n, 0.05, &mut rng).expect("valid p");
        group.bench_with_input(BenchmarkId::new("pagerank10", n), &n, |bencher, _| {
            bencher.iter(|| pagerank(black_box(&graph), &pr_config));
        });
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |bencher, _| {
            bencher.iter(|| encoder.encode(black_box(&graph)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
