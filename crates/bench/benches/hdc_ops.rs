//! Micro-benchmarks for the HDC substrate (paper Section III efficiency
//! claims): bind, bundle, similarity and permutation throughput versus
//! hypervector dimensionality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdvec::{bundle, Accumulator, Hypervector, ItemMemory, TieBreak};
use prng::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_hdc_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_ops");
    for &dim in &[1_024usize, 10_000, 65_536] {
        let memory = ItemMemory::new(dim, 7).expect("valid dimension");
        let a = memory.hypervector(0);
        let b = memory.hypervector(1);
        let sixteen: Vec<Hypervector> = (0..16).map(|i| memory.hypervector(i)).collect();

        group.bench_with_input(BenchmarkId::new("bind", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).bind(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).cosine(black_box(&b)));
        });
        // The raw fused XOR+popcount kernel, without the dot/cosine
        // arithmetic on top — the unit the SIMD backend dispatches.
        group.bench_with_input(BenchmarkId::new("hamming", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).hamming(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("permute", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).permute(black_box(13)));
        });
        // A shift near d/2 (crossing many words, odd intra-word offset):
        // the funnel-shift kernel must cost the same as shift 13.
        group.bench_with_input(BenchmarkId::new("permute_half", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).permute(black_box(dim / 2 + 1)));
        });
        group.bench_with_input(
            BenchmarkId::new("permute_assign", dim),
            &dim,
            |bencher, _| {
                let mut v = a.clone();
                bencher.iter(|| {
                    v.permute_assign(black_box(13));
                    black_box(v.words()[0])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("with_noise_1pct", dim),
            &dim,
            |bencher, _| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
                bencher.iter(|| black_box(&a).with_noise(black_box(0.01), &mut rng));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("with_noise_10pct", dim),
            &dim,
            |bencher, _| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
                bencher.iter(|| black_box(&a).with_noise(black_box(0.1), &mut rng));
            },
        );
        group.bench_with_input(BenchmarkId::new("bundle16", dim), &dim, |bencher, _| {
            bencher.iter(|| bundle(black_box(&sixteen), TieBreak::default()));
        });
        group.bench_with_input(
            BenchmarkId::new("accumulator_add", dim),
            &dim,
            |bencher, _| {
                let mut acc = Accumulator::new(dim).expect("valid dimension");
                bencher.iter(|| {
                    acc.add(black_box(&a));
                    black_box(acc.added())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("to_components", dim),
            &dim,
            |bencher, _| {
                bencher.iter(|| black_box(&a).to_components());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("from_components", dim),
            &dim,
            |bencher, _| {
                let components = a.to_components();
                bencher.iter(|| Hypervector::from_components(black_box(&components)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("item_memory_generate", dim),
            &dim,
            |bencher, _| {
                let mut index = 0u64;
                bencher.iter(|| {
                    index = index.wrapping_add(1);
                    memory.hypervector(black_box(index))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hdc_ops);
criterion_main!(benches);
