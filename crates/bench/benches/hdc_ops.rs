//! Micro-benchmarks for the HDC substrate (paper Section III efficiency
//! claims): bind, bundle, similarity and permutation throughput versus
//! hypervector dimensionality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdvec::{bundle, Hypervector, ItemMemory, TieBreak};
use std::hint::black_box;

fn bench_hdc_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_ops");
    for &dim in &[1_024usize, 10_000, 65_536] {
        let memory = ItemMemory::new(dim, 7).expect("valid dimension");
        let a = memory.hypervector(0);
        let b = memory.hypervector(1);
        let sixteen: Vec<Hypervector> = (0..16).map(|i| memory.hypervector(i)).collect();

        group.bench_with_input(BenchmarkId::new("bind", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).bind(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).cosine(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("permute", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).permute(black_box(13)));
        });
        group.bench_with_input(BenchmarkId::new("bundle16", dim), &dim, |bencher, _| {
            bencher.iter(|| bundle(black_box(&sixteen), TieBreak::default()));
        });
        group.bench_with_input(
            BenchmarkId::new("item_memory_generate", dim),
            &dim,
            |bencher, _| {
                let mut index = 0u64;
                bencher.iter(|| {
                    index = index.wrapping_add(1);
                    memory.hypervector(black_box(index))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hdc_ops);
criterion_main!(benches);
