//! Micro-benchmarks for the kernel baselines: WL refinement and Gram
//! matrix computation on a benchmark-sized surrogate.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::surrogate;
use std::hint::black_box;
use wlkernels::{compute_gram, wl_features, KernelKind};

fn bench_wl(c: &mut Criterion) {
    let spec = surrogate::spec_by_name("MUTAG").expect("known dataset");
    let dataset = surrogate::generate_surrogate_sized(spec, 11, 60);
    let graphs = dataset.graphs().to_vec();
    let features = wl_features(&graphs, 3);

    let mut group = c.benchmark_group("wl_kernel");
    group.sample_size(20);
    group.bench_function("refine_h3_60graphs", |bencher| {
        bencher.iter(|| wl_features(black_box(&graphs), 3));
    });
    group.bench_function("gram_subtree_60", |bencher| {
        bencher.iter(|| compute_gram(black_box(&features.maps), KernelKind::Subtree));
    });
    group.bench_function("gram_assignment_60", |bencher| {
        bencher.iter(|| compute_gram(black_box(&features.maps), KernelKind::OptimalAssignment));
    });
    group.finish();
}

criterion_group!(benches, bench_wl);
criterion_main!(benches);
