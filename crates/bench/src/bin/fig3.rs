//! Experiments E2–E4 — regenerates all three panels of Figure 3 from one
//! cross-validation run per (method, dataset):
//!
//! - left panel: accuracy (± std over folds),
//! - middle panel: training time of one fold, in seconds,
//! - right panel: inference time per graph, in seconds.
//!
//! Run: `cargo run -p bench --release --bin fig3 [--quick|--full]
//!       [--datasets MUTAG,PTC_FM]`

use datasets::harness::evaluate_cv;

fn main() {
    let options = bench::Options::parse(std::env::args());
    let protocol = options.effort.protocol(options.seed);
    let datasets = options.load_datasets();

    let mut accuracy_rows = Vec::new();
    let mut train_rows = Vec::new();
    let mut infer_rows = Vec::new();

    for dataset in &datasets {
        eprintln!(
            "== {} ({} graphs, {} classes) ==",
            dataset.name(),
            dataset.len(),
            dataset.num_classes()
        );
        let mut roster = bench::method_roster(options.effort, options.seed);
        for method in roster.iter_mut() {
            let report = evaluate_cv(method.as_mut(), dataset, &protocol)
                .expect("datasets are large enough for the protocol");
            let accuracy = report.accuracy();
            let train = report.train_seconds();
            let infer = report.infer_seconds_per_graph();
            eprintln!(
                "  {:<10} acc {:.3} ± {:.3}   train {}s/fold   infer {}s/graph",
                report.method,
                accuracy.mean,
                accuracy.std_dev,
                bench::fmt_seconds(train.mean),
                bench::fmt_seconds(infer.mean),
            );
            accuracy_rows.push(vec![
                dataset.name().to_string(),
                report.method.clone(),
                format!("{:.4}", accuracy.mean),
                format!("{:.4}", accuracy.std_dev),
            ]);
            train_rows.push(vec![
                dataset.name().to_string(),
                report.method.clone(),
                bench::fmt_seconds(train.mean),
            ]);
            infer_rows.push(vec![
                dataset.name().to_string(),
                report.method.clone(),
                format!("{:.3e}", infer.mean),
            ]);
        }
    }

    println!("\nFigure 3 (left): accuracy");
    bench::emit_results(
        &options,
        "fig3_accuracy",
        &["dataset", "method", "accuracy_mean", "accuracy_std"],
        &accuracy_rows,
    );
    println!("\nFigure 3 (middle): training time per fold [s]");
    bench::emit_results(
        &options,
        "fig3_train_time",
        &["dataset", "method", "train_seconds_per_fold"],
        &train_rows,
    );
    println!("\nFigure 3 (right): inference time per graph [s]");
    bench::emit_results(
        &options,
        "fig3_inference_time",
        &["dataset", "method", "infer_seconds_per_graph"],
        &infer_rows,
    );

    // Headline ratios the paper calls out in the abstract: training and
    // inference speedups of GraphHD over the baseline average.
    summarize_speedups(&train_rows, "training");
    summarize_speedups_infer(&infer_rows);
}

fn summarize_speedups(rows: &[Vec<String>], what: &str) {
    let mut ratios = Vec::new();
    let datasets: std::collections::BTreeSet<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    for dataset in datasets {
        let value = |method: &str| -> Option<f64> {
            rows.iter()
                .find(|r| r[0] == dataset && r[1] == method)
                .and_then(|r| r[2].parse().ok())
        };
        if let Some(hd) = value("GraphHD") {
            for method in ["1-WL", "WL-OA", "GIN-e", "GIN-e-JK"] {
                if let Some(other) = value(method) {
                    if hd > 0.0 {
                        ratios.push(other / hd);
                    }
                }
            }
        }
    }
    if !ratios.is_empty() {
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("GraphHD mean {what} speedup over baselines: {mean:.1}x");
    }
}

fn summarize_speedups_infer(rows: &[Vec<String>]) {
    summarize_speedups(rows, "inference");
}
