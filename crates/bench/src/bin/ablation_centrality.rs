//! Ablation A1 — how much does the choice of vertex identifier matter?
//! The paper proposes PageRank ranks (Section IV-C); this experiment
//! swaps in degree-centrality ranks and raw vertex ids (the strawman the
//! paper argues against) on every benchmark surrogate.
//!
//! Run: `cargo run -p bench --release --bin ablation_centrality [--quick]`

use datasets::harness::evaluate_cv;
use graphhd::{CentralityKind, GraphHdClassifier, GraphHdConfig};

fn main() {
    let options = bench::Options::parse(std::env::args());
    let protocol = options.effort.protocol(options.seed);
    let datasets = options.load_datasets();

    let mut rows = Vec::new();
    for dataset in &datasets {
        eprintln!("== {} ==", dataset.name());
        for kind in [
            CentralityKind::PageRank,
            CentralityKind::Degree,
            CentralityKind::VertexId,
        ] {
            let config = GraphHdConfig::builder()
                .centrality(kind)
                .seed(options.seed)
                .build()
                .expect("valid config");
            let mut clf = GraphHdClassifier::new(config);
            let report = evaluate_cv(&mut clf, dataset, &protocol).expect("protocol fits datasets");
            let accuracy = report.accuracy();
            eprintln!(
                "  {:<10} acc {:.3} ± {:.3}  train {}s",
                kind.name(),
                accuracy.mean,
                accuracy.std_dev,
                bench::fmt_seconds(report.train_seconds().mean)
            );
            rows.push(vec![
                dataset.name().to_string(),
                kind.name().to_string(),
                format!("{:.4}", accuracy.mean),
                format!("{:.4}", accuracy.std_dev),
                bench::fmt_seconds(report.train_seconds().mean),
            ]);
        }
    }
    bench::emit_results(
        &options,
        "ablation_centrality",
        &[
            "dataset",
            "centrality",
            "accuracy_mean",
            "accuracy_std",
            "train_seconds_per_fold",
        ],
        &rows,
    );
}
