//! Experiment E5 — regenerates Figure 4 (scaling profile): training time
//! of one fold versus graph size on synthetic Erdős–Rényi datasets
//! (100 graphs, 2 balanced classes, edge probability 0.05), for GraphHD,
//! GIN-ε and WL-OA, exactly the three methods of the paper's Section V-B.
//!
//! Run: `cargo run -p bench --release --bin fig4_scaling [--quick|--full]`

use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
use datasets::harness::{evaluate_cv, CvProtocol, GraphClassifier};
use datasets::surrogate;
use graphhd::GraphHdClassifier;
use tinynn::gin::GinConfig;
use wlkernels::KernelKind;

fn main() {
    let options = bench::Options::parse(std::env::args());
    // The paper sweeps up to 980 vertices; the quick tier stops at 260.
    let sizes: &[usize] = match options.effort {
        bench::Effort::Quick => &[20, 100, 260],
        bench::Effort::Standard => &[20, 100, 260, 500],
        bench::Effort::Full => &[20, 100, 260, 500, 740, 980],
    };
    let num_graphs = 100;
    // Fig. 4 reports one fold of training time: a handful of folds gives
    // a stable mean; the full tier keeps the paper's 10.
    let protocol = CvProtocol {
        folds: match options.effort {
            bench::Effort::Full => 10,
            _ => 3,
        },
        repetitions: 1,
        seed: options.seed,
    };

    let mut rows = Vec::new();
    for &n in sizes {
        let dataset = surrogate::scaling_dataset(n, num_graphs, options.seed)
            .expect("valid scaling parameters");
        eprintln!("== n = {n} (avg edges {:.1}) ==", dataset.stats().avg_edges);
        let mut methods: Vec<Box<dyn GraphClassifier>> = vec![
            Box::new(GraphHdClassifier::default()),
            Box::new(GinBaseline::new(GinConfig {
                epochs: match options.effort {
                    bench::Effort::Full => 100,
                    _ => 30,
                },
                batch_size: 32,
                seed: options.seed,
                ..GinConfig::default()
            })),
            Box::new(WlSvmClassifier::new(match options.effort {
                // The kernel grid IS the kernel training cost; keep the
                // paper's grid except in quick smoke runs.
                bench::Effort::Quick => WlSvmConfig::fast(KernelKind::OptimalAssignment),
                _ => WlSvmConfig::paper(KernelKind::OptimalAssignment),
            })),
        ];
        for method in methods.iter_mut() {
            let report =
                evaluate_cv(method.as_mut(), &dataset, &protocol).expect("100 graphs split fine");
            let train = report.train_seconds();
            eprintln!(
                "  {:<8} train {}s/fold (acc {:.2})",
                report.method,
                bench::fmt_seconds(train.mean),
                report.accuracy().mean,
            );
            rows.push(vec![
                format!("{n}"),
                report.method.clone(),
                bench::fmt_seconds(train.mean),
            ]);
        }
    }

    println!("\nFigure 4: training time per fold vs graph size [s]");
    bench::emit_results(
        &options,
        "fig4_scaling",
        &["vertices", "method", "train_seconds_per_fold"],
        &rows,
    );

    // The paper's headline at n = 980: GraphHD 6.2x faster than GIN-e and
    // 15.0x faster than WL-OA. Report ours at the largest measured size.
    let largest = sizes.last().expect("non-empty sweep").to_string();
    let value = |method: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r[0] == largest && r[1] == method)
            .and_then(|r| r[2].parse().ok())
    };
    if let (Some(hd), Some(gin), Some(oa)) = (value("GraphHD"), value("GIN-e"), value("WL-OA")) {
        println!(
            "at n = {largest}: GraphHD is {:.1}x faster than GIN-e, {:.1}x faster than WL-OA",
            gin / hd,
            oa / hd
        );
    }
}
