//! Ablation A5 — how much does the encoding *strategy* matter? The
//! paper's centrality recipe against the VS-Graph-style
//! vertex-similarity and CiliaGraph-style edge-weighted strategies on
//! every benchmark surrogate: CV accuracy plus single-thread encode
//! throughput (graphs/second), since the alternative strategies pay for
//! their extra features at encode time.
//!
//! Run: `cargo run -p bench --release --bin ablation_encoder [--quick]`

use std::time::Instant;

use datasets::harness::evaluate_cv;
use graphcore::Graph;
use graphhd::{EncoderKind, GraphEncoder, GraphHdClassifier, GraphHdConfig};
use parallel::Pool;
use std::sync::Arc;

/// Graphs/second for one serial pass over the dataset (pinned to one
/// thread so strategies are compared on work done, not on scheduling).
fn encode_throughput(config: GraphHdConfig, graphs: &[&Graph]) -> f64 {
    let encoder = GraphEncoder::new(config)
        .expect("valid config")
        .with_pool(Arc::new(Pool::with_threads(1)));
    let start = Instant::now();
    let encodings = encoder.encode_all(graphs);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(encodings.len(), graphs.len());
    graphs.len() as f64 / elapsed.max(1e-12)
}

fn main() {
    let options = bench::Options::parse(std::env::args());
    let protocol = options.effort.protocol(options.seed);
    let datasets = options.load_datasets();

    let mut rows = Vec::new();
    for dataset in &datasets {
        eprintln!("== {} ==", dataset.name());
        let graphs: Vec<&Graph> = dataset.graphs().iter().collect();
        for kind in [
            EncoderKind::Centrality,
            EncoderKind::vertex_similarity(),
            EncoderKind::edge_weighted(),
        ] {
            let config = GraphHdConfig::builder()
                .with_encoder(kind)
                .seed(options.seed)
                .build()
                .expect("valid config");
            let mut clf = GraphHdClassifier::new(config);
            let report = evaluate_cv(&mut clf, dataset, &protocol).expect("protocol fits datasets");
            let accuracy = report.accuracy();
            let throughput = encode_throughput(config, &graphs);
            eprintln!(
                "  {:<18} acc {:.3} ± {:.3}  encode {:.0} graphs/s  train {}s",
                kind.name(),
                accuracy.mean,
                accuracy.std_dev,
                throughput,
                bench::fmt_seconds(report.train_seconds().mean)
            );
            rows.push(vec![
                dataset.name().to_string(),
                kind.name().to_string(),
                format!("{:.4}", accuracy.mean),
                format!("{:.4}", accuracy.std_dev),
                format!("{throughput:.1}"),
                bench::fmt_seconds(report.train_seconds().mean),
            ]);
        }
    }
    bench::emit_results(
        &options,
        "ablation_encoder",
        &[
            "dataset",
            "encoder",
            "accuracy_mean",
            "accuracy_std",
            "encode_graphs_per_second",
            "train_seconds_per_fold",
        ],
        &rows,
    );
}
