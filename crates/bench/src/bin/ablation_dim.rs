//! Ablation A2 — accuracy and training time versus hypervector
//! dimensionality. The paper fixes d = 10,000 (Section V); this sweep
//! shows where accuracy saturates and what each dimension costs.
//!
//! Run: `cargo run -p bench --release --bin ablation_dim [--quick]`

use datasets::harness::evaluate_cv;
use graphhd::{GraphHdClassifier, GraphHdConfig};

fn main() {
    let options = bench::Options::parse(std::env::args());
    let protocol = options.effort.protocol(options.seed);
    let dims: &[usize] = match options.effort {
        bench::Effort::Quick => &[256, 2048, 10_000],
        _ => &[256, 1024, 4096, 10_000, 16_384],
    };
    let datasets = options.load_datasets();

    let mut rows = Vec::new();
    for dataset in &datasets {
        eprintln!("== {} ==", dataset.name());
        for &dim in dims {
            let config = GraphHdConfig::builder()
                .dim(dim)
                .seed(options.seed)
                .build()
                .expect("valid config");
            let mut clf = GraphHdClassifier::new(config);
            let report = evaluate_cv(&mut clf, dataset, &protocol).expect("protocol fits datasets");
            let accuracy = report.accuracy();
            eprintln!(
                "  d = {dim:<6} acc {:.3} ± {:.3}  train {}s",
                accuracy.mean,
                accuracy.std_dev,
                bench::fmt_seconds(report.train_seconds().mean)
            );
            rows.push(vec![
                dataset.name().to_string(),
                format!("{dim}"),
                format!("{:.4}", accuracy.mean),
                format!("{:.4}", accuracy.std_dev),
                bench::fmt_seconds(report.train_seconds().mean),
            ]);
        }
    }
    bench::emit_results(
        &options,
        "ablation_dim",
        &[
            "dataset",
            "dim",
            "accuracy_mean",
            "accuracy_std",
            "train_seconds_per_fold",
        ],
        &rows,
    );
}
