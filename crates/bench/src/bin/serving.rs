//! Serving-layer end-to-end benchmark: latency and throughput of the
//! [`engine::Engine`] request path (queue → batched dispatch → pool →
//! blocked SIMD scoring), swept over submitter counts and batch sizes.
//!
//! This measures the *whole* serving stack against the same model served
//! directly (`predict_all` with no queue), so the queue/dispatch overhead
//! is visible rather than assumed. Results feed `BENCH_pr8.json`.
//!
//! Latency numbers come from the engine's own `engine_request_ns`
//! histogram (acceptance to fulfilment, per request, as an interval
//! delta via [`HistogramSnapshot::since`]) — the same code path the
//! production stats surface reads — so the bench and an operator's
//! dashboard can never disagree about what "p99" means. Throughput
//! remains wall-clock (queries / elapsed). With `GRAPHHD_TELEMETRY=off`
//! the histograms are empty and the latency columns degrade to the old
//! derived mean — that mode exists to measure telemetry's own overhead.
//!
//! A second table (`serving_overload.csv`) measures behaviour **past**
//! saturation: double the queue capacity in submitters, all firing as
//! fast as they can, once per [`engine::OverloadPolicy`]. Reported per
//! policy: shed rate, goodput (completed queries/s) and served p99 —
//! the numbers behind the policy guidance in `docs/RESILIENCE.md`.
//!
//! A third table (`serving_socket.csv`) sends the same traffic
//! **through the wire**: the model behind a `netserve` server on
//! loopback TCP, one blocking connection per client thread, per
//! overload policy. Latency is read from both histograms — the
//! engine's `engine_request_ns` (queue to fulfilment) and the
//! server's per-model `net_request_ns` (decode to response written) —
//! so the socket tax is the visible gap between the two. Results feed
//! `BENCH_pr10.json`.
//!
//! Run: `cargo run -p bench --release --bin serving [--quick]`

use datasets::{surrogate, StratifiedKFold};
use engine::{Engine, OverloadPolicy};
use graphcore::Graph;
use graphhd::{Error, GraphHdConfig, GraphHdModel};
use std::time::{Duration, Instant};
use telemetry::HistogramSnapshot;

/// One measured configuration.
struct Measurement {
    submitters: usize,
    batch_size: usize,
    queries: usize,
    seconds: f64,
    /// End-to-end per-request latency over the measured interval,
    /// straight from `engine_request_ns` (empty when timing is off).
    request_ns: HistogramSnapshot,
}

impl Measurement {
    fn throughput(&self) -> f64 {
        self.queries as f64 / self.seconds
    }

    fn mean_latency_us(&self) -> f64 {
        if self.request_ns.is_empty() {
            // Telemetry off: fall back to the derived mean (total wall
            // time divided by queries per submitter).
            self.seconds * 1e6 * self.submitters as f64 / self.queries as f64
        } else {
            self.request_ns.mean() / 1e3
        }
    }

    /// Percentile of the per-request latency in microseconds, when the
    /// histogram recorded the interval.
    fn percentile_us(&self, q: f64) -> Option<f64> {
        (!self.request_ns.is_empty()).then(|| self.request_ns.percentile(q) as f64 / 1e3)
    }

    fn percentile_cell(&self, q: f64) -> String {
        self.percentile_us(q)
            .map_or_else(|| "-".into(), |us| format!("{us:.1}"))
    }
}

fn measure(
    engine: &Engine,
    queries: &[Graph],
    submitters: usize,
    batch_size: usize,
    rounds: usize,
) -> Measurement {
    // Warm-up round so pool threads and caches are hot.
    run_round(engine, queries, submitters, batch_size, rounds / 4 + 1);
    let before = engine.stats();
    let started = Instant::now();
    let total = run_round(engine, queries, submitters, batch_size, rounds);
    let seconds = started.elapsed().as_secs_f64();
    Measurement {
        submitters,
        batch_size,
        queries: total,
        seconds,
        request_ns: engine.stats().request_ns.since(&before.request_ns),
    }
}

fn run_round(
    engine: &Engine,
    queries: &[Graph],
    submitters: usize,
    batch_size: usize,
    rounds: usize,
) -> usize {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..submitters {
            let engine = engine.clone();
            handles.push(scope.spawn(move || {
                let mut served = 0usize;
                for round in 0..rounds {
                    if batch_size == 1 {
                        let graph = &queries[(submitter + round) % queries.len()];
                        engine.classify(graph).expect("engine alive");
                        served += 1;
                    } else {
                        let start = (submitter * 13 + round) % queries.len();
                        let batch: Vec<&Graph> = (0..batch_size)
                            .map(|i| &queries[(start + i) % queries.len()])
                            .collect();
                        served += engine.classify_batch(&batch).expect("engine alive").len();
                    }
                }
                served
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .sum()
    })
}

/// One overload cell: `submitters` threads at full tilt against a
/// deliberately small queue, under `policy`. Returns the CSV row.
fn overload_row(
    model: &GraphHdModel,
    queries: &[Graph],
    policy: OverloadPolicy,
    submitters: usize,
    rounds: usize,
) -> Vec<String> {
    let engine = Engine::builder()
        .queue_capacity(submitters / 2)
        .max_batch(4)
        .overload_policy(policy)
        .from_model(model.clone())
        .expect("valid knobs");

    let started = Instant::now();
    let (completed, shed) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..submitters {
            let engine = engine.clone();
            handles.push(scope.spawn(move || {
                let (mut completed, mut shed) = (0u64, 0u64);
                for round in 0..rounds {
                    match engine.classify(&queries[(submitter + round) % queries.len()]) {
                        Ok(_) => completed += 1,
                        Err(Error::Overloaded) => shed += 1,
                        Err(other) => panic!("overload bench: unexpected error {other:?}"),
                    }
                }
                (completed, shed)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });
    let seconds = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    engine.shutdown();

    let offered = (submitters * rounds) as u64;
    let shed_rate = shed as f64 / offered as f64;
    let goodput = completed as f64 / seconds;
    let p99 = if stats.request_ns.is_empty() {
        "-".into()
    } else {
        format!("{:.1}", stats.request_ns.percentile(0.99) as f64 / 1e3)
    };
    eprintln!(
        "overload {policy:?}: offered {offered}, completed {completed}, \
         shed {shed} ({:.1}%), goodput {goodput:.0} queries/s, p99 {p99} us",
        shed_rate * 100.0,
    );
    vec![
        format!("{policy:?}"),
        offered.to_string(),
        completed.to_string(),
        shed.to_string(),
        format!("{shed_rate:.4}"),
        format!("{goodput:.0}"),
        p99,
    ]
}

/// One through-the-socket cell: the model behind a loopback `netserve`
/// server under `policy`, `connections` client threads each sending
/// `rounds` classify frames on a persistent connection. Returns the
/// CSV row.
fn socket_row(
    model: &GraphHdModel,
    queries: &[Graph],
    policy: OverloadPolicy,
    connections: usize,
    rounds: usize,
) -> Vec<String> {
    let engine = Engine::builder()
        .queue_capacity(connections / 2)
        .max_batch(4)
        .overload_policy(policy)
        .from_model(model.clone())
        .expect("valid knobs");
    let registry = std::sync::Arc::new(netserve::ModelRegistry::new());
    registry
        .insert("m", engine.clone())
        .expect("fresh registry");
    let server = netserve::ServerBuilder::new(std::sync::Arc::clone(&registry))
        .max_connections(connections + 1)
        .serve()
        .expect("loopback bind");
    let addr = server.local_addr();

    let drive = |rounds: usize| -> (u64, u64) {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for connection in 0..connections {
                handles.push(scope.spawn(move || {
                    let mut client = netserve::Client::connect(addr).expect("loopback connect");
                    let (mut completed, mut shed) = (0u64, 0u64);
                    for round in 0..rounds {
                        let graph = &queries[(connection + round) % queries.len()];
                        match client.classify("m", graph) {
                            Ok(_) => completed += 1,
                            Err(netserve::NetError::Remote {
                                code: netserve::ErrorCode::Overloaded,
                                ..
                            }) => shed += 1,
                            Err(other) => panic!("socket bench: unexpected error {other:?}"),
                        }
                    }
                    (completed, shed)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
        })
    };

    // Warm-up: connection setup, pool threads, branch predictors.
    drive(rounds / 4 + 1);
    let engine_before = engine.stats().request_ns;
    let net_before = registry.net_latency("m").expect("hosted model");
    let started = Instant::now();
    let (completed, shed) = drive(rounds);
    let seconds = started.elapsed().as_secs_f64();
    let engine_ns = engine.stats().request_ns.since(&engine_before);
    let net_ns = registry
        .net_latency("m")
        .expect("hosted model")
        .since(&net_before);
    server.shutdown();
    engine.shutdown();

    let offered = (connections * rounds) as u64;
    let qps = completed as f64 / seconds;
    let pct = |snap: &telemetry::HistogramSnapshot, q: f64| -> String {
        if snap.is_empty() {
            "-".into()
        } else {
            format!("{:.1}", snap.percentile(q) as f64 / 1e3)
        }
    };
    eprintln!(
        "socket {policy:?}: {connections} conns, offered {offered}, completed {completed}, \
         shed {shed}, {qps:.0} queries/s, net p50/p99 {}/{} us, engine p50/p99 {}/{} us",
        pct(&net_ns, 0.50),
        pct(&net_ns, 0.99),
        pct(&engine_ns, 0.50),
        pct(&engine_ns, 0.99),
    );
    vec![
        format!("{policy:?}"),
        connections.to_string(),
        offered.to_string(),
        completed.to_string(),
        shed.to_string(),
        format!("{qps:.0}"),
        pct(&net_ns, 0.50),
        pct(&net_ns, 0.90),
        pct(&net_ns, 0.99),
        pct(&engine_ns, 0.50),
        pct(&engine_ns, 0.90),
        pct(&engine_ns, 0.99),
    ]
}

fn main() {
    let options = bench::Options::parse(std::env::args());
    let quick = matches!(options.effort, bench::Effort::Quick);

    // Full surrogate-MUTAG, paper-default dimension; the engine serves a
    // snapshot-restored model, i.e. the exact production path.
    let dataset = surrogate::by_name("MUTAG", options.seed).expect("known dataset");
    let folds = StratifiedKFold::new(5, options.seed)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    let train_graphs: Vec<&Graph> = folds[0].train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = folds[0].train.iter().map(|&i| dataset.label(i)).collect();
    let queries: Vec<Graph> = folds[0]
        .test
        .iter()
        .map(|&i| dataset.graph(i).clone())
        .collect();

    let config = GraphHdConfig::builder()
        .seed(options.seed)
        .build()
        .expect("valid config");
    let model = GraphHdModel::fit(config, &train_graphs, &train_labels, dataset.num_classes())
        .expect("consistent dataset");

    let path =
        std::env::temp_dir().join(format!("graphhd-serving-bench-{}.ghd", std::process::id()));
    model.save(&path).expect("writable temp dir");
    let engine = Engine::from_snapshot(&path).expect("valid snapshot");
    std::fs::remove_file(&path).expect("cleanup");

    // Baseline: the same queries with no queue in the way.
    let direct_rounds = if quick { 200 } else { 2000 };
    let started = Instant::now();
    for _ in 0..direct_rounds {
        let _ = model.predict_batch(&queries);
    }
    let direct = started.elapsed().as_secs_f64();
    let direct_per_query = direct * 1e6 / (direct_rounds * queries.len()) as f64;
    eprintln!("direct predict_batch: {direct_per_query:.1} us/query (no queue)");

    let rounds = |batch: usize| -> usize {
        let base = if quick { 2_000 } else { 20_000 };
        (base / batch).max(8)
    };
    let mut rows = Vec::new();
    for submitters in [1usize, 4] {
        for batch_size in [1usize, 32, 256] {
            let m = measure(
                &engine,
                &queries,
                submitters,
                batch_size,
                rounds(batch_size),
            );
            eprintln!(
                "submitters {submitters} batch {batch_size:>3}: \
                 {:>9.0} queries/s, {:>8.1} us mean, p50 {} p90 {} p99 {} us",
                m.throughput(),
                m.mean_latency_us(),
                m.percentile_cell(0.50),
                m.percentile_cell(0.90),
                m.percentile_cell(0.99),
            );
            rows.push(vec![
                m.submitters.to_string(),
                m.batch_size.to_string(),
                m.queries.to_string(),
                format!("{:.0}", m.throughput()),
                format!("{:.1}", m.mean_latency_us()),
                m.percentile_cell(0.50),
                m.percentile_cell(0.90),
                m.percentile_cell(0.99),
                m.percentile_cell(1.0),
            ]);
        }
    }
    rows.push(vec![
        "direct".into(),
        "-".into(),
        (direct_rounds * queries.len()).to_string(),
        format!("{:.0}", 1e6 / direct_per_query),
        format!("{direct_per_query:.1}"),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // The live stats surface the bench numbers were read from — printed
    // so a bench run doubles as a smoke test of the production snapshot.
    eprintln!(
        "\nengine stats snapshot:\n{}",
        engine.registry().render_json()
    );
    engine.shutdown();

    bench::emit_results(
        &options,
        "serving",
        &[
            "submitters",
            "batch_size",
            "queries",
            "throughput_qps",
            "mean_latency_us",
            "p50_us",
            "p90_us",
            "p99_us",
            "max_us",
        ],
        &rows,
    );

    // Past-saturation behaviour: 2x the queue capacity in submitters,
    // each policy on a fresh engine serving the same model.
    let overload_submitters = 16usize;
    let overload_rounds = if quick { 500 } else { 6_000 };
    let overload_rows: Vec<Vec<String>> = [
        OverloadPolicy::Block,
        OverloadPolicy::Shed,
        OverloadPolicy::Timeout(Duration::from_micros(500)),
    ]
    .into_iter()
    .map(|policy| {
        overload_row(
            &model,
            &queries,
            policy,
            overload_submitters,
            overload_rounds,
        )
    })
    .collect();
    bench::emit_results(
        &options,
        "serving_overload",
        &[
            "policy",
            "offered",
            "completed",
            "shed",
            "shed_rate",
            "goodput_qps",
            "p99_us",
        ],
        &overload_rows,
    );

    // Through the wire: the same model behind a loopback `netserve`
    // server, one persistent connection per client thread, per policy.
    let socket_connections = 8usize;
    let socket_rounds = if quick { 300 } else { 4_000 };
    let socket_rows: Vec<Vec<String>> = [
        OverloadPolicy::Block,
        OverloadPolicy::Shed,
        OverloadPolicy::Timeout(Duration::from_micros(500)),
    ]
    .into_iter()
    .map(|policy| socket_row(&model, &queries, policy, socket_connections, socket_rounds))
    .collect();
    bench::emit_results(
        &options,
        "serving_socket",
        &[
            "policy",
            "connections",
            "offered",
            "completed",
            "shed",
            "qps",
            "net_p50_us",
            "net_p90_us",
            "net_p99_us",
            "engine_p50_us",
            "engine_p90_us",
            "engine_p99_us",
        ],
        &socket_rows,
    );
}
