//! Serving-layer end-to-end benchmark: latency and throughput of the
//! [`engine::Engine`] request path (queue → batched dispatch → pool →
//! blocked SIMD scoring), swept over submitter counts and batch sizes.
//!
//! This measures the *whole* serving stack against the same model served
//! directly (`predict_all` with no queue), so the queue/dispatch overhead
//! is visible rather than assumed. Results feed `BENCH_pr5.json`.
//!
//! Run: `cargo run -p bench --release --bin serving [--quick]`

use datasets::{surrogate, StratifiedKFold};
use engine::Engine;
use graphcore::Graph;
use graphhd::{GraphHdConfig, GraphHdModel};
use std::time::Instant;

/// One measured configuration.
struct Measurement {
    submitters: usize,
    batch_size: usize,
    queries: usize,
    seconds: f64,
}

impl Measurement {
    fn throughput(&self) -> f64 {
        self.queries as f64 / self.seconds
    }

    fn mean_latency_us(&self) -> f64 {
        // Mean per-query wall time observed by one submitter: total wall
        // time divided by queries *per submitter*.
        self.seconds * 1e6 * self.submitters as f64 / self.queries as f64
    }
}

fn measure(
    engine: &Engine,
    queries: &[Graph],
    submitters: usize,
    batch_size: usize,
    rounds: usize,
) -> Measurement {
    // Warm-up round so pool threads and caches are hot.
    run_round(engine, queries, submitters, batch_size, rounds / 4 + 1);
    let started = Instant::now();
    let total = run_round(engine, queries, submitters, batch_size, rounds);
    Measurement {
        submitters,
        batch_size,
        queries: total,
        seconds: started.elapsed().as_secs_f64(),
    }
}

fn run_round(
    engine: &Engine,
    queries: &[Graph],
    submitters: usize,
    batch_size: usize,
    rounds: usize,
) -> usize {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..submitters {
            let engine = engine.clone();
            handles.push(scope.spawn(move || {
                let mut served = 0usize;
                for round in 0..rounds {
                    if batch_size == 1 {
                        let graph = &queries[(submitter + round) % queries.len()];
                        engine.classify(graph).expect("engine alive");
                        served += 1;
                    } else {
                        let start = (submitter * 13 + round) % queries.len();
                        let batch: Vec<&Graph> = (0..batch_size)
                            .map(|i| &queries[(start + i) % queries.len()])
                            .collect();
                        served += engine.classify_batch(&batch).expect("engine alive").len();
                    }
                }
                served
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .sum()
    })
}

fn main() {
    let options = bench::Options::parse(std::env::args());
    let quick = matches!(options.effort, bench::Effort::Quick);

    // Full surrogate-MUTAG, paper-default dimension; the engine serves a
    // snapshot-restored model, i.e. the exact production path.
    let dataset = surrogate::by_name("MUTAG", options.seed).expect("known dataset");
    let folds = StratifiedKFold::new(5, options.seed)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("splittable");
    let train_graphs: Vec<&Graph> = folds[0].train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = folds[0].train.iter().map(|&i| dataset.label(i)).collect();
    let queries: Vec<Graph> = folds[0]
        .test
        .iter()
        .map(|&i| dataset.graph(i).clone())
        .collect();

    let config = GraphHdConfig::builder()
        .seed(options.seed)
        .build()
        .expect("valid config");
    let model = GraphHdModel::fit(config, &train_graphs, &train_labels, dataset.num_classes())
        .expect("consistent dataset");

    let path =
        std::env::temp_dir().join(format!("graphhd-serving-bench-{}.ghd", std::process::id()));
    model.save(&path).expect("writable temp dir");
    let engine = Engine::from_snapshot(&path).expect("valid snapshot");
    std::fs::remove_file(&path).expect("cleanup");

    // Baseline: the same queries with no queue in the way.
    let direct_rounds = if quick { 200 } else { 2000 };
    let started = Instant::now();
    for _ in 0..direct_rounds {
        let _ = model.predict_batch(&queries);
    }
    let direct = started.elapsed().as_secs_f64();
    let direct_per_query = direct * 1e6 / (direct_rounds * queries.len()) as f64;
    eprintln!("direct predict_batch: {direct_per_query:.1} us/query (no queue)");

    let rounds = |batch: usize| -> usize {
        let base = if quick { 2_000 } else { 20_000 };
        (base / batch).max(8)
    };
    let mut rows = Vec::new();
    for submitters in [1usize, 4] {
        for batch_size in [1usize, 32, 256] {
            let m = measure(
                &engine,
                &queries,
                submitters,
                batch_size,
                rounds(batch_size),
            );
            eprintln!(
                "submitters {submitters} batch {batch_size:>3}: \
                 {:>9.0} queries/s, {:>8.1} us mean latency",
                m.throughput(),
                m.mean_latency_us(),
            );
            rows.push(vec![
                m.submitters.to_string(),
                m.batch_size.to_string(),
                m.queries.to_string(),
                format!("{:.0}", m.throughput()),
                format!("{:.1}", m.mean_latency_us()),
            ]);
        }
    }
    rows.push(vec![
        "direct".into(),
        "-".into(),
        (direct_rounds * queries.len()).to_string(),
        format!("{:.0}", 1e6 / direct_per_query),
        format!("{direct_per_query:.1}"),
    ]);
    engine.shutdown();

    bench::emit_results(
        &options,
        "serving",
        &[
            "submitters",
            "batch_size",
            "queries",
            "throughput_qps",
            "mean_latency_us",
        ],
        &rows,
    );
}
