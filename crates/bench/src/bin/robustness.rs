//! Experiment A3 — the HDC robustness claim: accuracy as a growing
//! fraction of class-vector (and query) bits is flipped. The paper cites
//! robustness to faulty components as a core HDC advantage (Sections
//! I–II); this experiment quantifies it for GraphHD.
//!
//! Run: `cargo run -p bench --release --bin robustness [--quick]`

use datasets::StratifiedKFold;
use graphcore::Graph;
use graphhd::{noise, GraphHdConfig, GraphHdModel};

fn main() {
    let options = bench::Options::parse(std::env::args());
    let rates = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.45];
    let datasets = options.load_datasets();

    let mut rows = Vec::new();
    for dataset in &datasets {
        // One stratified 80/20 split per dataset (noise is swept on the
        // same trained model, isolating the fault-injection variable).
        let folds = StratifiedKFold::new(5, options.seed)
            .expect("at least two folds")
            .split(dataset.labels())
            .expect("datasets are large enough");
        let fold = &folds[0];
        let train_graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
        let train_labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();
        let test_graphs: Vec<&Graph> = fold.test.iter().map(|&i| dataset.graph(i)).collect();
        let test_labels: Vec<u32> = fold.test.iter().map(|&i| dataset.label(i)).collect();

        let model = GraphHdModel::fit(
            GraphHdConfig::builder()
                .seed(options.seed)
                .build()
                .expect("valid config"),
            &train_graphs,
            &train_labels,
            dataset.num_classes(),
        )
        .expect("validated by the dataset");

        eprintln!("== {} ==", dataset.name());
        for (rate, model_noise_acc, query_noise_acc) in
            noise::noise_sweep(&model, &test_graphs, &test_labels, &rates, options.seed)
        {
            eprintln!(
                "  flip {:>4.0}%: class-vector noise acc {:.3}, query noise acc {:.3}",
                rate * 100.0,
                model_noise_acc,
                query_noise_acc
            );
            rows.push(vec![
                dataset.name().to_string(),
                format!("{rate:.2}"),
                format!("{model_noise_acc:.4}"),
                format!("{query_noise_acc:.4}"),
            ]);
        }
    }
    bench::emit_results(
        &options,
        "robustness",
        &[
            "dataset",
            "flip_rate",
            "accuracy_model_noise",
            "accuracy_query_noise",
        ],
        &rows,
    );
}
