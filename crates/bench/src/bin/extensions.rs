//! Experiment A4 — the paper's future-work directions (Section VII),
//! measured: does retraining close the accuracy gap, and do multiple
//! class-vectors per class help?
//!
//! Run: `cargo run -p bench --release --bin extensions [--quick]`

use datasets::harness::{evaluate_cv, GraphClassifier};
use graphhd::prototypes::{MultiPrototypeModel, PrototypeConfig};
use graphhd::{GraphHdClassifier, GraphHdConfig};

fn main() {
    let options = bench::Options::parse(std::env::args());
    let protocol = options.effort.protocol(options.seed);
    let datasets = options.load_datasets();

    let mut rows = Vec::new();
    for dataset in &datasets {
        eprintln!("== {} ==", dataset.name());

        // Baseline and retraining variants under the full CV protocol.
        let variants: Vec<(String, Box<dyn GraphClassifier>)> = vec![
            (
                "baseline".into(),
                Box::new(GraphHdClassifier::new(
                    GraphHdConfig::builder()
                        .seed(options.seed)
                        .build()
                        .expect("valid config"),
                )),
            ),
            (
                "retrain-5".into(),
                Box::new(
                    GraphHdClassifier::new(
                        GraphHdConfig::builder()
                            .seed(options.seed)
                            .build()
                            .expect("valid config"),
                    )
                    .with_retraining(5),
                ),
            ),
            (
                "retrain-20".into(),
                Box::new(
                    GraphHdClassifier::new(
                        GraphHdConfig::builder()
                            .seed(options.seed)
                            .build()
                            .expect("valid config"),
                    )
                    .with_retraining(20),
                ),
            ),
            // The multi-prototype extension now implements the shared
            // trait (its online fit is deterministic for a given fold
            // order), so it runs under the same CV protocol as every
            // other variant instead of a bespoke single split.
            (
                "prototypes-4".into(),
                Box::new(
                    MultiPrototypeModel::untrained(PrototypeConfig {
                        base: GraphHdConfig::builder()
                            .seed(options.seed)
                            .build()
                            .expect("valid config"),
                        ..PrototypeConfig::default()
                    })
                    .expect("valid config"),
                ),
            ),
        ];
        for (label, mut clf) in variants {
            let report = evaluate_cv(clf.as_mut(), dataset, &protocol).expect("protocol fits");
            let accuracy = report.accuracy();
            eprintln!(
                "  {label:<12} acc {:.3} ± {:.3}  train {}s",
                accuracy.mean,
                accuracy.std_dev,
                bench::fmt_seconds(report.train_seconds().mean)
            );
            rows.push(vec![
                dataset.name().to_string(),
                label,
                format!("{:.4}", accuracy.mean),
                format!("{:.4}", accuracy.std_dev),
                bench::fmt_seconds(report.train_seconds().mean),
            ]);
        }
    }
    bench::emit_results(
        &options,
        "extensions",
        &[
            "dataset",
            "variant",
            "accuracy_mean",
            "accuracy_std",
            "train_seconds_per_fold",
        ],
        &rows,
    );
}
