//! Experiment A4 — the paper's future-work directions (Section VII),
//! measured: does retraining close the accuracy gap, and do multiple
//! class-vectors per class help?
//!
//! Run: `cargo run -p bench --release --bin extensions [--quick]`

use datasets::harness::{evaluate_cv, GraphClassifier};
use datasets::{GraphDataset, StratifiedKFold};
use graphcore::Graph;
use graphhd::prototypes::{MultiPrototypeModel, PrototypeConfig};
use graphhd::{GraphHdClassifier, GraphHdConfig};

fn main() {
    let options = bench::Options::parse(std::env::args());
    let protocol = options.effort.protocol(options.seed);
    let datasets = options.load_datasets();

    let mut rows = Vec::new();
    for dataset in &datasets {
        eprintln!("== {} ==", dataset.name());

        // Baseline and retraining variants under the full CV protocol.
        let variants: Vec<(String, Box<dyn GraphClassifier>)> = vec![
            (
                "baseline".into(),
                Box::new(GraphHdClassifier::new(GraphHdConfig::with_seed(
                    options.seed,
                ))),
            ),
            (
                "retrain-5".into(),
                Box::new(
                    GraphHdClassifier::new(GraphHdConfig::with_seed(options.seed))
                        .with_retraining(5),
                ),
            ),
            (
                "retrain-20".into(),
                Box::new(
                    GraphHdClassifier::new(GraphHdConfig::with_seed(options.seed))
                        .with_retraining(20),
                ),
            ),
        ];
        for (label, mut clf) in variants {
            let report = evaluate_cv(clf.as_mut(), dataset, &protocol).expect("protocol fits");
            let accuracy = report.accuracy();
            eprintln!(
                "  {label:<12} acc {:.3} ± {:.3}  train {}s",
                accuracy.mean,
                accuracy.std_dev,
                bench::fmt_seconds(report.train_seconds().mean)
            );
            rows.push(vec![
                dataset.name().to_string(),
                label,
                format!("{:.4}", accuracy.mean),
                format!("{:.4}", accuracy.std_dev),
                bench::fmt_seconds(report.train_seconds().mean),
            ]);
        }

        // Multi-prototype variant (single split: the prototype model does
        // not implement the trait because its fit is online/order-aware).
        let accuracy = multi_prototype_accuracy(dataset, options.seed);
        eprintln!("  prototypes-4 acc {accuracy:.3} (single 80/20 split)");
        rows.push(vec![
            dataset.name().to_string(),
            "prototypes-4".into(),
            format!("{accuracy:.4}"),
            String::from("-"),
            String::from("-"),
        ]);
    }
    bench::emit_results(
        &options,
        "extensions",
        &[
            "dataset",
            "variant",
            "accuracy_mean",
            "accuracy_std",
            "train_seconds_per_fold",
        ],
        &rows,
    );
}

fn multi_prototype_accuracy(dataset: &GraphDataset, seed: u64) -> f64 {
    let folds = StratifiedKFold::new(5, seed)
        .expect("at least two folds")
        .split(dataset.labels())
        .expect("datasets are large enough");
    let fold = &folds[0];
    let train_graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();
    let config = PrototypeConfig {
        base: GraphHdConfig::with_seed(seed),
        ..PrototypeConfig::default()
    };
    let model =
        MultiPrototypeModel::fit(config, &train_graphs, &train_labels, dataset.num_classes())
            .expect("validated by the dataset");
    let test_graphs: Vec<&Graph> = fold.test.iter().map(|&i| dataset.graph(i)).collect();
    let predictions = model.predict_all(&test_graphs);
    let hits = predictions
        .iter()
        .zip(fold.test.iter().map(|&i| dataset.label(i)))
        .filter(|(p, l)| **p == *l)
        .count();
    hits as f64 / fold.test.len().max(1) as f64
}
