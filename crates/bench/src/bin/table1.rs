//! Experiment E1 — regenerates Table I ("Statistics of graph datasets"):
//! graph count, class count, average vertices and average edges for the
//! six benchmark surrogates, next to the published values.
//!
//! Run: `cargo run -p bench --release --bin table1 [--quick|--full]`

use datasets::surrogate;

fn main() {
    let options = bench::Options::parse(std::env::args());
    let mut rows = Vec::new();
    for spec in &surrogate::TU_SPECS {
        if !options.datasets.is_empty()
            && !options
                .datasets
                .iter()
                .any(|d| d.eq_ignore_ascii_case(spec.name))
        {
            continue;
        }
        let size = options
            .effort
            .max_graphs()
            .map_or(spec.num_graphs, |cap| cap.min(spec.num_graphs));
        let dataset = surrogate::generate_surrogate_sized(spec, options.seed, size);
        let stats = dataset.stats();
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", stats.graphs),
            format!("{}", stats.classes),
            format!("{:.2}", stats.avg_vertices),
            format!("{:.2}", stats.avg_edges),
            format!("{}", spec.num_graphs),
            format!("{:.2}", spec.avg_vertices),
            format!("{:.2}", spec.avg_edges),
        ]);
    }
    bench::emit_results(
        &options,
        "table1",
        &[
            "dataset",
            "graphs",
            "classes",
            "avg_vertices",
            "avg_edges",
            "paper_graphs",
            "paper_avg_vertices",
            "paper_avg_edges",
        ],
        &rows,
    );
}
