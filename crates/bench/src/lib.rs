//! Shared infrastructure for the experiment binaries.
//!
//! Every binary regenerating a table or figure of the paper uses the same
//! effort tiers, dataset loading, method roster and result writing, so
//! that "who wins, by roughly what factor" comparisons are made under one
//! protocol. See `README.md` for the mapping from paper artifact to
//! binary.

use baselines::{GinBaseline, WlSvmClassifier, WlSvmConfig};
use datasets::harness::{CvProtocol, GraphClassifier};
use datasets::{surrogate, GraphDataset};
use graphhd::{GraphHdClassifier, GraphHdConfig};
use std::path::PathBuf;
use tinynn::gin::GinConfig;
use wlkernels::KernelKind;

/// How much compute an experiment run should spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Seconds-scale smoke run: tiny datasets, reduced grids, 3 folds.
    Quick,
    /// Minutes-scale default: subsampled datasets, reduced grids,
    /// 10 folds — enough to reproduce every qualitative shape.
    Standard,
    /// The paper's full protocol: full-size surrogates, full grids,
    /// 10 folds × 3 repetitions. Hours-scale on a laptop (the kernel
    /// baselines dominate, exactly as the paper reports).
    Full,
}

impl Effort {
    /// Cap on the number of graphs sampled per dataset.
    #[must_use]
    pub fn max_graphs(&self) -> Option<usize> {
        match self {
            Effort::Quick => Some(60),
            Effort::Standard => Some(160),
            Effort::Full => None,
        }
    }

    /// The CV protocol for this tier.
    #[must_use]
    pub fn protocol(&self, seed: u64) -> CvProtocol {
        match self {
            Effort::Quick => CvProtocol {
                folds: 3,
                repetitions: 1,
                seed,
            },
            Effort::Standard => CvProtocol {
                folds: 10,
                repetitions: 1,
                seed,
            },
            Effort::Full => CvProtocol {
                folds: 10,
                repetitions: 3,
                seed,
            },
        }
    }
}

/// Command-line options shared by all experiment binaries.
///
/// Flags: `--quick`, `--full` (default is standard), `--seed N`,
/// `--out DIR`, `--datasets A,B,C`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Effort tier.
    pub effort: Effort,
    /// Base seed for dataset generation and CV shuffling.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Restrict to these dataset names (Table I names), if non-empty.
    pub datasets: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            effort: Effort::Standard,
            seed: 2022,
            out_dir: PathBuf::from("results"),
            datasets: Vec::new(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => options.effort = Effort::Quick,
                "--full" => options.effort = Effort::Full,
                "--seed" => {
                    let value = iter.next().expect("--seed needs a value");
                    options.seed = value.parse().expect("--seed needs an integer");
                }
                "--out" => {
                    options.out_dir =
                        PathBuf::from(iter.next().expect("--out needs a directory"));
                }
                "--datasets" => {
                    let value = iter.next().expect("--datasets needs a list");
                    options.datasets =
                        value.split(',').map(|s| s.trim().to_string()).collect();
                }
                other => panic!(
                    "unknown argument {other}; known: --quick --full --seed N --out DIR --datasets A,B"
                ),
            }
        }
        options
    }

    /// Loads the Table I surrogates selected by the options, sized by the
    /// effort tier.
    #[must_use]
    pub fn load_datasets(&self) -> Vec<GraphDataset> {
        surrogate::TU_SPECS
            .iter()
            .filter(|spec| {
                self.datasets.is_empty()
                    || self
                        .datasets
                        .iter()
                        .any(|d| d.eq_ignore_ascii_case(spec.name))
            })
            .map(|spec| {
                let size = self
                    .effort
                    .max_graphs()
                    .map_or(spec.num_graphs, |cap| cap.min(spec.num_graphs));
                surrogate::generate_surrogate_sized(spec, self.seed, size)
            })
            .collect()
    }
}

/// Builds the paper's five methods (GraphHD + four baselines), tuned to
/// the effort tier.
#[must_use]
pub fn method_roster(effort: Effort, seed: u64) -> Vec<Box<dyn GraphClassifier>> {
    let graphhd = GraphHdClassifier::new(
        GraphHdConfig::builder()
            .seed(seed)
            .build()
            .expect("valid config"),
    );
    let (wl_subtree, wl_assignment) = match effort {
        Effort::Full => (
            WlSvmConfig::paper(KernelKind::Subtree),
            WlSvmConfig::paper(KernelKind::OptimalAssignment),
        ),
        _ => (
            WlSvmConfig::fast(KernelKind::Subtree),
            WlSvmConfig::fast(KernelKind::OptimalAssignment),
        ),
    };
    let gin_config = |jumping: bool| match effort {
        Effort::Quick => GinConfig {
            epochs: 30,
            batch_size: 16,
            jumping_knowledge: jumping,
            seed,
            ..GinConfig::default()
        },
        Effort::Standard => GinConfig {
            epochs: 30,
            batch_size: 32,
            jumping_knowledge: jumping,
            seed,
            ..GinConfig::default()
        },
        Effort::Full => GinConfig {
            jumping_knowledge: jumping,
            seed,
            ..GinConfig::default()
        },
    };
    vec![
        Box::new(graphhd),
        Box::new(WlSvmClassifier::new(wl_subtree)),
        Box::new(WlSvmClassifier::new(wl_assignment)),
        Box::new(GinBaseline::new(gin_config(false))),
        Box::new(GinBaseline::new(gin_config(true))),
    ]
}

/// Prints a rendered table to stdout and writes the matching CSV to
/// `<out_dir>/<name>.csv`.
///
/// # Panics
///
/// Panics if the output directory cannot be created or written.
pub fn emit_results(options: &Options, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", datasets::table::render_table(headers, rows));
    std::fs::create_dir_all(&options.out_dir).expect("create results directory");
    let path = options.out_dir.join(format!("{name}.csv"));
    std::fs::write(&path, datasets::table::render_csv(headers, rows)).expect("write results csv");
    println!("wrote {}", path.display());
}

/// Formats seconds with enough precision for the log-scale comparisons.
#[must_use]
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds < 1e-4 {
        format!("{:.2e}", seconds)
    } else if seconds < 1.0 {
        format!("{seconds:.4}")
    } else {
        format!("{seconds:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        std::iter::once("bin".to_string())
            .chain(list.iter().map(|s| (*s).to_string()))
            .collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = Options::parse(args(&[]));
        assert_eq!(o.effort, Effort::Standard);
        let o = Options::parse(args(&["--quick", "--seed", "7", "--datasets", "MUTAG,dd"]));
        assert_eq!(o.effort, Effort::Quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.datasets, vec!["MUTAG", "dd"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn parse_rejects_unknown() {
        let _ = Options::parse(args(&["--bogus"]));
    }

    #[test]
    fn dataset_filter_and_sizing() {
        let mut o = Options::parse(args(&["--quick", "--datasets", "mutag"]));
        o.seed = 1;
        let loaded = o.load_datasets();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name(), "MUTAG");
        assert_eq!(loaded[0].len(), 60);
    }

    #[test]
    fn roster_has_five_methods_in_paper_order() {
        let roster = method_roster(Effort::Quick, 1);
        let names: Vec<&str> = roster.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["GraphHD", "1-WL", "WL-OA", "GIN-e", "GIN-e-JK"]);
    }

    #[test]
    fn seconds_formatting_covers_scales() {
        assert_eq!(fmt_seconds(2.5), "2.50");
        assert_eq!(fmt_seconds(0.1234), "0.1234");
        assert!(fmt_seconds(5e-6).contains('e'));
    }
}
