//! End-to-end serving: two named models over real loopback TCP,
//! zero-downtime hot-swap under live traffic, deadlines and overload
//! policies through the frame header, batched submits, the snapshot
//! watcher, and the merged fleet scrape.

use engine::{Engine, OverloadPolicy};
use graphcore::{generate, Graph};
use netserve::wire::ErrorCode;
use netserve::{Client, ModelRegistry, NetError, ServerBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("netserve-{tag}-{}-{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

fn workload(seed: u64) -> (Vec<Graph>, Vec<u32>) {
    let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        let base = generate::erdos_renyi(12, 0.25, &mut rng).expect("valid p");
        labels.push(u32::from(i % 2 == 0));
        graphs.push(if i % 2 == 0 {
            base
        } else {
            generate::with_planted_triangles(&base, 3, &mut rng).expect("n >= 3")
        });
    }
    (graphs, labels)
}

fn fit_model(seed: u64) -> graphhd::GraphHdModel {
    let (graphs, labels) = workload(seed);
    let config = graphhd::GraphHdConfig::builder()
        .dim(256)
        .seed(seed)
        .build()
        .expect("valid dimension");
    graphhd::GraphHdModel::fit(config, &graphs, &labels, 2).expect("fit")
}

fn fit_engine(seed: u64) -> Engine {
    Engine::builder()
        .threads(1)
        .from_model(fit_model(seed))
        .expect("engine")
}

/// The flagship flow of this PR: two models served concurrently over
/// TCP, client traffic hammering both, a hot-swap to a new snapshot
/// version landing mid-traffic — with **zero failed requests** and
/// the new version observably serving afterwards.
#[test]
fn hot_swap_under_live_traffic_loses_nothing() {
    let dir = temp_dir("swap");
    let v1 = fit_model(1).save_version(&dir, 4).expect("save v1");
    assert_eq!(v1, 1);

    let registry = Arc::new(ModelRegistry::new());
    let loaded = registry
        .insert_versioned("primary", &dir, Engine::builder().threads(1))
        .expect("insert versioned");
    assert_eq!(loaded, 1);
    registry.insert("stable", fit_engine(3)).expect("insert");

    let server = ServerBuilder::new(Arc::clone(&registry))
        .serve()
        .expect("serve");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let swap_seen = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let swap_seen = Arc::clone(&swap_seen);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let model = if worker % 2 == 0 { "primary" } else { "stable" };
                let graph = generate::complete(6 + worker % 3);
                while !stop.load(Ordering::Relaxed) {
                    // The invariant under swap: every single request
                    // gets a real answer. Any error fails the test.
                    let class = client
                        .classify(model, &graph)
                        .expect("no request may fail across a hot-swap");
                    assert!(class < 2);
                    completed.fetch_add(1, Ordering::Relaxed);
                    if model == "primary" {
                        let info = client.model_info(model).expect("info");
                        if info.version == 2 {
                            swap_seen.store(true, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Let traffic establish, then land the swap mid-flight.
    let warmup = Instant::now();
    while completed.load(Ordering::Relaxed) < 50 {
        assert!(
            warmup.elapsed() < Duration::from_secs(30),
            "traffic never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let v2 = fit_model(2).save_version(&dir, 4).expect("save v2");
    assert_eq!(v2, 2);
    let swapped = registry.reload("primary").expect("reload");
    assert_eq!(swapped, Some(2));
    assert_eq!(registry.reload("primary").expect("idempotent"), None);

    // Keep traffic flowing long enough for clients to observe v2.
    let observe = Instant::now();
    while !swap_seen.load(Ordering::Relaxed) {
        assert!(
            observe.elapsed() < Duration::from_secs(30),
            "clients never observed the new version"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().expect("client thread must not panic");
    }

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.model_info("primary").expect("info").version, 2);
    assert!(completed.load(Ordering::Relaxed) > 50);

    // The server-side view agrees: every decoded frame was answered.
    let stats = server.stats();
    assert_eq!(stats.decode_errors, 0, "{stats:?}");
    assert!(stats.frames_in >= stats.frames_out, "{stats:?}");
    server.shutdown();
}

/// Deadlines ride the frame header onto the engine's `_within`
/// machinery: an already-expired budget answers `DeadlineExceeded`
/// (accepted-and-answered, per the engine contract), and a generous
/// one succeeds.
#[test]
fn deadlines_cross_the_wire() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", fit_engine(5)).expect("insert");
    let server = ServerBuilder::new(registry).serve().expect("serve");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let graph = generate::complete(8);

    assert!(
        client
            .classify_within("m", &graph, Duration::from_secs(30))
            .expect("generous budget")
            < 2
    );

    // Duration::ZERO encodes as the smallest wire budget (1 µs): by
    // dispatch time it has expired. The engine may still win the race
    // on a fast host, so accept either a real answer or the typed
    // deadline error — never a transport failure.
    match client.classify_within("m", &graph, Duration::ZERO) {
        Ok(class) => assert!(class < 2),
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::DeadlineExceeded),
        Err(other) => panic!("expected answer or deadline error, got {other:?}"),
    }

    // The connection is still usable after a deadline miss.
    assert!(client.classify("m", &graph).expect("still open") < 2);
    server.shutdown();
}

/// A `Shed` engine under a brief burst answers every frame with either
/// a class or a typed `Overloaded` error — the overload policy
/// crosses the wire as a structured response, not a dropped
/// connection.
#[test]
fn shed_policy_surfaces_as_typed_overload() {
    let engine = Engine::builder()
        .threads(1)
        .queue_capacity(1)
        .max_batch(1)
        .overload_policy(OverloadPolicy::Shed)
        .from_model(fit_model(6))
        .expect("engine");
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", engine).expect("insert");
    let server = ServerBuilder::new(registry).serve().expect("serve");
    let addr = server.local_addr();

    let outcomes: Vec<_> = (0..4)
        .map(|worker| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let graph = generate::complete(10 + worker);
                let mut answered = 0u64;
                let mut shed = 0u64;
                for _ in 0..50 {
                    match client.classify("m", &graph) {
                        Ok(class) => {
                            assert!(class < 2);
                            answered += 1;
                        }
                        Err(NetError::Remote { code, .. }) => {
                            assert_eq!(code, ErrorCode::Overloaded);
                            shed += 1;
                        }
                        Err(other) => panic!("transport failure under shed: {other:?}"),
                    }
                }
                (answered, shed)
            })
        })
        .collect();
    let mut answered = 0;
    let mut shed = 0;
    for outcome in outcomes {
        let (a, s) = outcome.join().expect("no panic");
        answered += a;
        shed += s;
    }
    assert_eq!(answered + shed, 200, "every frame got a typed answer");
    assert!(answered > 0, "a capacity-1 queue still serves");
    server.shutdown();
}

/// Batched submits answer in order and match the in-process engine.
#[test]
fn batched_submit_matches_in_process() {
    let engine = fit_engine(9);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", engine.clone()).expect("insert");
    let server = ServerBuilder::new(registry).serve().expect("serve");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let batch: Vec<Graph> = (3..11).map(generate::complete).collect();
    let over_wire = client
        .classify_batch("m", &batch, Some(Duration::from_secs(30)))
        .expect("batch");
    let local = engine.classify_batch(&batch).expect("local batch");
    assert_eq!(over_wire, local);
    server.shutdown();
}

/// The watcher thread picks up new `save_version` files and hot-swaps
/// them without any operator call.
#[test]
fn watcher_reloads_new_versions() {
    let dir = temp_dir("watch");
    fit_model(1).save_version(&dir, 4).expect("save v1");
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert_versioned("m", &dir, Engine::builder().threads(1))
        .expect("insert");
    let mut watcher = registry.spawn_watcher(Duration::from_millis(10));

    fit_model(2).save_version(&dir, 4).expect("save v2");
    let deadline = Instant::now() + Duration::from_secs(30);
    while registry.version("m") != Some(2) {
        assert!(Instant::now() < deadline, "watcher never picked up v2");
        std::thread::sleep(Duration::from_millis(5));
    }
    watcher.stop();
}

/// The fleet scrape is one coherent exposition: server `net_*` series
/// unlabeled, every engine's series labeled `model="name"`, validated
/// by the telemetry parser.
#[test]
fn merged_scrape_is_valid_and_labeled() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("alpha", fit_engine(11)).expect("insert");
    registry.insert("beta", fit_engine(12)).expect("insert");
    let server = ServerBuilder::new(registry).serve().expect("serve");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let graph = generate::complete(7);
    assert!(client.classify("alpha", &graph).expect("alpha") < 2);
    assert!(client.classify("beta", &graph).expect("beta") < 2);

    let scrape = client.stats().expect("stats frame");
    telemetry::validate_exposition(&scrape).expect("merged scrape must parse");
    for needle in [
        "net_connections_accepted",
        "net_frames_in",
        "engine_requests_accepted{model=\"alpha\"}",
        "engine_requests_accepted{model=\"beta\"}",
        "net_request_ns_count{model=\"alpha\"}",
    ] {
        assert!(
            scrape.contains(needle),
            "scrape missing `{needle}`:\n{scrape}"
        );
    }
    // The in-process view renders the same text.
    let direct = server.render_prometheus();
    telemetry::validate_exposition(&direct).expect("direct scrape must parse");
    server.shutdown();
}

/// Shutdown drains: in-flight work finishes, the listener stops, and
/// the call returns with every slot free.
#[test]
fn shutdown_drains_and_stops_accepting() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", fit_engine(13)).expect("insert");
    let server = ServerBuilder::new(registry).serve().expect("serve");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    assert!(
        client
            .classify("m", &generate::complete(6))
            .expect("served")
            < 2
    );

    server.shutdown();
    assert_eq!(server.stats().connections_active, 0, "drain left a slot");

    // The held connection is closed out from under the idle client...
    let result = client.classify("m", &generate::complete(6));
    assert!(result.is_err(), "draining must close idle connections");
    // ...and new connections are refused at the TCP level.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            assert!(
                late.classify("m", &generate::complete(6)).is_err(),
                "a post-shutdown connection must not be served"
            );
        }
    }
}
