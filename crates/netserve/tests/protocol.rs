//! Protocol robustness: a live server fed malformed, truncated,
//! oversized and random frames must answer a typed error frame or
//! close the connection cleanly — it must never panic, never write a
//! malformed frame of its own, and never leak a connection slot.
//! Mirrors the exhaustive-truncation style of `tests/snapshot_crash.rs`
//! at the wire layer.

use graphcore::{generate, Graph};
use netserve::wire::{self, ErrorCode, Request, Response};
use netserve::{Client, ModelRegistry, NetError, ServerBuilder};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fit_engine(seed: u64) -> engine::Engine {
    let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        let base = generate::erdos_renyi(10, 0.3, &mut rng).expect("valid p");
        labels.push(u32::from(i % 2 == 0));
        graphs.push(if i % 2 == 0 {
            base
        } else {
            generate::with_planted_triangles(&base, 3, &mut rng).expect("n >= 3")
        });
    }
    engine::Engine::builder()
        .dim(256)
        .seed(seed)
        .threads(1)
        .fit(&graphs, &labels, 2)
        .expect("fit")
}

fn serve_one() -> (netserve::Server, Graph) {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", fit_engine(7)).expect("insert");
    let server = ServerBuilder::new(registry).serve().expect("serve");
    (server, generate::complete(6))
}

/// Polls until every connection slot is free (the server saw all our
/// closes) — the "never leaks a slot" assertion.
fn assert_slots_drain(server: &netserve::Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().connections_active > 0 {
        assert!(
            Instant::now() < deadline,
            "connection slots leaked: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Sends raw bytes, half-closes, and drains whatever the server
/// answers. Returns the decoded response frames (may be empty for a
/// silent close); panics if the server ever writes a malformed frame.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // The server may close mid-write on garbage input; a broken pipe
    // here is a valid outcome, not a test failure.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut responses = Vec::new();
    loop {
        match wire::read_response(&mut stream) {
            Ok(Some(response)) => responses.push(response),
            Ok(None) => return responses,
            Err(e) => panic!("server wrote a malformed frame: {e}"),
        }
    }
}

fn classify_frame(graph: &Graph) -> Vec<u8> {
    wire::encode_request(&Request::Classify {
        model: "m".to_string(),
        deadline: None,
        graph: graph.clone(),
    })
}

fn assert_error_or_silent(responses: &[Response], context: &str) {
    match responses {
        [] => {}
        [Response::Error { code, .. }] => {
            assert_eq!(*code, ErrorCode::BadFrame, "{context}: wrong code");
        }
        other => panic!("{context}: expected error frame or close, got {other:?}"),
    }
}

/// Every possible truncation of a valid request frame gets a typed
/// `BadFrame` answer or a clean close, and the server keeps serving.
#[test]
fn exhaustive_truncation_answers_typed_error_or_close() {
    let (server, graph) = serve_one();
    let frame = classify_frame(&graph);
    for cut in 0..frame.len() {
        let responses = send_raw(server.local_addr(), &frame[..cut]);
        if cut == 0 {
            assert!(
                responses.is_empty(),
                "empty connection answered {responses:?}"
            );
        } else {
            assert_error_or_silent(&responses, &format!("cut at {cut}"));
        }
    }
    // The server survived all of it: a full valid exchange still works
    // and no slot was leaked.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.classify("m", &graph).expect("classify") < 2);
    drop(client);
    assert_slots_drain(&server);
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, frame.len() as u64 + 1);
    assert!(
        stats.decode_errors >= 1,
        "truncations not counted: {stats:?}"
    );
    server.shutdown();
}

/// Headers lying about enormous payloads, names or batch counts are
/// refused before any allocation, with a typed error.
#[test]
fn oversized_declarations_are_refused() {
    let (server, graph) = serve_one();
    let addr = server.local_addr();

    let mut oversized_payload = classify_frame(&graph);
    oversized_payload[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_error_or_silent(&send_raw(addr, &oversized_payload), "oversized payload");

    let mut oversized_name = classify_frame(&graph);
    oversized_name[6..8].copy_from_slice(&u16::MAX.to_le_bytes());
    assert_error_or_silent(&send_raw(addr, &oversized_name), "oversized name");

    let oversized_batch = wire::encode_request(&Request::ClassifyBatch {
        model: "m".to_string(),
        deadline: None,
        graphs: vec![graph.clone()],
    });
    // Patch the in-payload batch count to one over the cap: payload
    // starts after the 20-byte header and the 1-byte name.
    let mut patched = oversized_batch;
    patched[21..25].copy_from_slice(&(wire::MAX_BATCH_GRAPHS as u32 + 1).to_le_bytes());
    assert_error_or_silent(&send_raw(addr, &patched), "oversized batch");

    let mut bad_version = classify_frame(&graph);
    bad_version[4] = 9;
    assert_error_or_silent(&send_raw(addr, &bad_version), "future version");

    let mut bad_type = classify_frame(&graph);
    bad_type[5] = 0x44;
    assert_error_or_silent(&send_raw(addr, &bad_type), "unknown type");

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.classify("m", &graph).expect("still serving") < 2);
    drop(client);
    assert_slots_drain(&server);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup: the server answers only well-formed frames
    /// (or closes silently) and never panics or wedges.
    #[test]
    fn junk_bytes_never_break_the_server(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let (server, graph) = junk_server();
        let responses = send_raw(server.local_addr(), &bytes);
        // Whatever came back was well-formed (send_raw panics on a
        // malformed frame); random bytes essentially never spell the
        // magic, so expect the error-or-close shape.
        if !bytes.starts_with(b"GHWP") {
            assert_error_or_silent(&responses, "junk");
        }
        let mut client = Client::connect(server.local_addr()).expect("connect");
        prop_assert!(client.classify("m", &graph).expect("still serving") < 2);
    }
}

/// One shared server for the proptest cases (spinning up an engine per
/// case would dominate the runtime).
fn junk_server() -> (&'static netserve::Server, Graph) {
    use std::sync::OnceLock;
    static SERVER: OnceLock<netserve::Server> = OnceLock::new();
    let server = SERVER.get_or_init(|| {
        let (server, _) = serve_one();
        server
    });
    (server, generate::complete(6))
}

/// Semantic errors (unknown model) answer a typed frame and keep the
/// connection open for the next request.
#[test]
fn unknown_model_keeps_connection_open() {
    let (server, graph) = serve_one();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.classify("nope", &graph) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    assert!(client.classify("m", &graph).expect("same connection") < 2);
    server.shutdown();
}

/// Connections beyond the slot limit get one typed `ConnectionLimit`
/// frame; slots freed by closing connections become available again.
#[test]
fn connection_limit_refuses_with_typed_frame() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("m", fit_engine(8)).expect("insert");
    let server = ServerBuilder::new(registry)
        .max_connections(1)
        .serve()
        .expect("serve");
    let graph = generate::complete(6);

    let mut first = Client::connect(server.local_addr()).expect("connect");
    assert!(first.classify("m", &graph).expect("first holds the slot") < 2);

    let mut second = Client::connect(server.local_addr()).expect("tcp connect still works");
    match second.classify("m", &graph) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ConnectionLimit),
        other => panic!("expected ConnectionLimit, got {other:?}"),
    }

    drop(first);
    drop(second);
    assert_slots_drain(&server);
    let mut third = Client::connect(server.local_addr()).expect("connect");
    assert!(third.classify("m", &graph).expect("slot was released") < 2);
    assert_eq!(server.stats().connections_refused, 1);
    server.shutdown();
}
