//! Chaos suite for the network tier: deterministic fault injection at
//! `net.accept`, `net.read` and `net.write`, asserting the serving
//! invariants:
//!
//! - the **server survives** every injected fault — dropped accepts,
//!   killed reads/writes, and injected panics inside connection
//!   threads — and keeps serving once the plan is lifted;
//! - clients see only **clean failures** (closed connections or typed
//!   error frames), never a malformed frame;
//! - **no connection slot leaks**, whatever path a connection dies on.
//!
//! Plans are seeded like the engine chaos suite: each scenario sweeps
//! seeds {1..5}, or just the ambient `GRAPHHD_FAULTS` seed when CI's
//! chaos matrix pins one.

use graphcore::{generate, Graph};
use netserve::{Client, ModelRegistry, NetError, ServerBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fit_engine(seed: u64) -> engine::Engine {
    let mut rng = prng::Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        let base = generate::erdos_renyi(10, 0.3, &mut rng).expect("valid p");
        labels.push(u32::from(i % 2 == 0));
        graphs.push(if i % 2 == 0 {
            base
        } else {
            generate::with_planted_triangles(&base, 3, &mut rng).expect("n >= 3")
        });
    }
    engine::Engine::builder()
        .dim(256)
        .seed(seed)
        .threads(1)
        .fit(&graphs, &labels, 2)
        .expect("fit")
}

fn seeds() -> Vec<u64> {
    match faultpoint::env_seed() {
        Some(seed) => vec![seed],
        None => (1..=5).collect(),
    }
}

fn assert_slots_drain(server: &netserve::Server, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().connections_active > 0 {
        assert!(
            Instant::now() < deadline,
            "{context}: connection slots leaked: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drives traffic with per-request reconnects while a fault plan is
/// armed: a request may fail cleanly (any `NetError`) and is retried
/// on a fresh connection; what it must never do is observe a
/// malformed frame (`NetError::Wire` other than io) or hang.
fn drive_traffic(addr: std::net::SocketAddr, graph: &Graph, requests: usize, context: &str) {
    let mut client: Option<Client> = None;
    for request in 0..requests {
        let mut served = false;
        for _attempt in 0..50 {
            let connection = match client.take() {
                Some(connection) => connection,
                None => match Client::connect(addr) {
                    Ok(connection) => connection,
                    // The accept fault dropped us on the floor (or the
                    // refused backlog raced); try again.
                    Err(NetError::Io { .. }) => continue,
                    Err(other) => {
                        panic!("{context}: connect failed uncleanly: {other:?}")
                    }
                },
            };
            let mut connection = connection;
            match connection.classify("m", graph) {
                Ok(class) => {
                    assert!(class < 2, "{context}: bogus class");
                    client = Some(connection);
                    served = true;
                    break;
                }
                // Clean failure shapes under injected faults: the
                // connection died (io/disconnect) or the server
                // answered a typed error. Anything else — a torn
                // frame — is a protocol violation.
                Err(NetError::Io { .. } | NetError::Disconnected) => {}
                Err(NetError::Wire(wire_error)) => {
                    use netserve::WireError;
                    assert!(
                        matches!(wire_error, WireError::Io { .. }),
                        "{context}: server wrote a torn frame: {wire_error:?}"
                    );
                }
                Err(NetError::Remote { .. }) => {
                    client = Some(connection);
                }
                Err(other) => panic!("{context}: unclean failure: {other:?}"),
            }
        }
        assert!(
            served,
            "{context}: request {request} never succeeded in 50 attempts"
        );
    }
}

fn run_scenario(point_spec: &str) {
    for seed in seeds() {
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("m", fit_engine(seed + 20)).expect("insert");
        let server = ServerBuilder::new(Arc::clone(&registry))
            .serve()
            .expect("serve");
        let addr = server.local_addr();
        let graph = generate::complete(7);
        let context = format!("seed={seed};{point_spec}");

        {
            let _guard = faultpoint::configure(&format!("seed={seed};{point_spec}"))
                .expect("valid fault spec");
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let graph = graph.clone();
                    let context = context.clone();
                    std::thread::spawn(move || drive_traffic(addr, &graph, 25, &context))
                })
                .collect();
            for worker in workers {
                worker.join().expect("traffic thread must not panic");
            }
        }

        // Plan lifted: the server must still serve a fresh connection,
        // and every slot a faulted connection held must be free again.
        let mut client = Client::connect(addr).expect("connect after faults");
        assert!(
            client.classify("m", &graph).expect("serve after faults") < 2,
            "{context}: bogus class after faults"
        );
        drop(client);
        assert_slots_drain(&server, &context);
        server.shutdown();
    }
}

/// Accepted connections dropped on the floor before handshake.
#[test]
fn survives_accept_faults() {
    run_scenario("net.accept=30%error");
}

/// Reads killed mid-stream: connections die, requests retry, nothing
/// leaks.
#[test]
fn survives_read_faults() {
    run_scenario("net.read=30%error");
}

/// Writes killed after the engine answered: the client sees a closed
/// connection, never a torn frame.
#[test]
fn survives_write_faults() {
    run_scenario("net.write=30%error");
}

/// Panics injected inside connection threads: the drop guard frees
/// the slot, the catch contains the unwind, the acceptor keeps going.
#[test]
fn survives_injected_panics() {
    run_scenario("net.read=20%panic");
}

/// Everything at once, the way the CI chaos matrix runs it.
#[test]
fn survives_combined_net_faults() {
    run_scenario("net.accept=15%error;net.read=15%error;net.write=15%error");
}
