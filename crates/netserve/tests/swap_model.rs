//! Model checking of the hot-swap handle.
//!
//! `netserve::Swap` is a `Mutex<Arc<T>>` with two operations: `load`
//! (lock, clone the `Arc`, unlock) and `store` (lock, replace the
//! `Arc`, unlock). These tests rebuild that protocol on
//! `parallel::model` primitives and explore every interleaving within
//! the preemption bound, checking the properties the serving tier
//! relies on:
//!
//! - a reader only ever observes a **fully published** version — one
//!   of the values a writer actually stored, never a torn or
//!   intermediate state;
//! - versions observed by one reader are **monotonic** (a hot-swap is
//!   never observed to roll back);
//! - a retired version is torn down **only after its last holder
//!   drops** (in-flight requests finish on the engine they started
//!   on) — modeled with a drop counter standing in for the engine's
//!   drain-on-last-drop;
//! - no interleaving of concurrent loads and stores deadlocks.

use parallel::model::{self, AtomicUsize, Config, Mutex};
use std::sync::Arc;

fn exhaustive() -> Config {
    Config {
        max_schedules: 2_000_000,
        max_steps: 20_000,
        preemption_bound: 3,
    }
}

/// A served version: its number, plus a shared retirement counter
/// bumped on drop — the stand-in for an engine draining its
/// dispatcher when the last in-flight holder releases it.
struct Version {
    id: usize,
    retired: Arc<AtomicUsize>,
}

impl Drop for Version {
    fn drop(&mut self) {
        self.retired.fetch_add(1);
    }
}

/// The `Swap` protocol on model primitives.
struct ModelSwap {
    current: Mutex<Arc<Version>>,
}

impl ModelSwap {
    fn new(initial: usize, retired: &Arc<AtomicUsize>) -> Self {
        Self {
            current: Mutex::new(Arc::new(Version {
                id: initial,
                retired: Arc::clone(retired),
            })),
        }
    }

    fn load(&self) -> Arc<Version> {
        Arc::clone(&self.current.lock())
    }

    fn store(&self, id: usize, retired: &Arc<AtomicUsize>) {
        let replacement = Arc::new(Version {
            id,
            retired: Arc::clone(retired),
        });
        let mut guard = self.current.lock();
        let _old = std::mem::replace(&mut *guard, replacement);
        // `_old` drops after the guard: release the lock first so the
        // (possibly expensive) engine teardown never runs inside the
        // pointer-swap critical section.
        drop(guard);
    }
}

/// Two readers race one writer publishing versions 1 then 2: every
/// load sees a published version, per-reader observations are
/// monotonic, and nothing deadlocks in any interleaving.
#[test]
fn readers_always_see_a_fully_published_version() {
    let report = model::check(exhaustive(), || {
        let retired = Arc::new(AtomicUsize::new(0));
        let swap = Arc::new(ModelSwap::new(0, &retired));

        let writer_swap = Arc::clone(&swap);
        let writer_retired = Arc::clone(&retired);
        let writer = model::spawn(move || {
            writer_swap.store(1, &writer_retired);
            writer_swap.store(2, &writer_retired);
        });

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let swap = Arc::clone(&swap);
                model::spawn(move || {
                    let first = swap.load();
                    assert!(first.id <= 2, "unpublished version {}", first.id);
                    let second = swap.load();
                    assert!(second.id <= 2, "unpublished version {}", second.id);
                    assert!(
                        second.id >= first.id,
                        "hot-swap rolled back: {} then {}",
                        first.id,
                        second.id
                    );
                })
            })
            .collect();

        writer.join();
        for reader in readers {
            reader.join();
        }

        // Quiescent: versions 0 and 1 are retired exactly once each —
        // and only now that every holder is gone; version 2 is live.
        assert_eq!(swap.load().id, 2, "final load must see the last store");
        assert_eq!(
            retired.load(),
            2,
            "exactly the two replaced versions retire"
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "schedule space not exhausted in {} runs",
        report.schedules
    );
}

/// A reader holding a loaded version across a store keeps it alive:
/// the writer's replacement must not tear down the old version while
/// the in-flight holder still has it.
#[test]
fn in_flight_holder_outlives_the_swap() {
    let report = model::check(exhaustive(), || {
        let retired = Arc::new(AtomicUsize::new(0));
        let swap = Arc::new(ModelSwap::new(0, &retired));

        let reader_swap = Arc::clone(&swap);
        let reader_retired = Arc::clone(&retired);
        let reader = model::spawn(move || {
            let held = reader_swap.load();
            // The "request" runs here, concurrent with the writer's
            // store. Whatever interleaving the scheduler picks, the
            // held version cannot have been retired yet.
            let retired_now = reader_retired.load();
            if held.id == 0 {
                assert_eq!(
                    retired_now, 0,
                    "version 0 retired while a request still held it"
                );
            }
            drop(held);
        });

        let writer_swap = Arc::clone(&swap);
        let writer_retired = Arc::clone(&retired);
        let writer = model::spawn(move || {
            writer_swap.store(1, &writer_retired);
        });

        reader.join();
        writer.join();
        assert_eq!(
            retired.load(),
            1,
            "the replaced version retires exactly once"
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.complete,
        "schedule space not exhausted in {} runs",
        report.schedules
    );
}
