//! A small blocking client for the wire protocol: one connection, one
//! in-flight request at a time (the protocol answers frames in order,
//! so callers wanting pipelining open more connections — they are
//! cheap on both sides).

use crate::error::NetError;
use crate::wire::{self, ModelInfo, Request, Response};
use graphcore::Graph;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a [`Server`](crate::Server).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// One request/response exchange. A typed error frame becomes
    /// [`NetError::Remote`]; a close where a response was due becomes
    /// [`NetError::Disconnected`].
    fn exchange(&mut self, request: &Request) -> Result<Response, NetError> {
        wire::write_request(&mut self.stream, request)?;
        match wire::read_response(&mut self.stream)? {
            None => Err(NetError::Disconnected),
            Some(Response::Error { code, message }) => Err(NetError::Remote { code, message }),
            Some(response) => Ok(response),
        }
    }

    /// Classifies `graph` against the named model.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for typed server errors (unknown model,
    /// overload, deadline, …), [`NetError::Io`]/[`NetError::Wire`] for
    /// transport failures.
    pub fn classify(&mut self, model: &str, graph: &Graph) -> Result<u32, NetError> {
        self.classify_opt(model, graph, None)
    }

    /// [`classify`](Self::classify) with a latency budget carried in
    /// the frame header; the server enforces it with the engine's
    /// deadline machinery.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify); an exceeded budget is
    /// [`NetError::Remote`] with
    /// [`ErrorCode::DeadlineExceeded`](crate::ErrorCode::DeadlineExceeded).
    pub fn classify_within(
        &mut self,
        model: &str,
        graph: &Graph,
        budget: Duration,
    ) -> Result<u32, NetError> {
        self.classify_opt(model, graph, Some(budget))
    }

    fn classify_opt(
        &mut self,
        model: &str,
        graph: &Graph,
        deadline: Option<Duration>,
    ) -> Result<u32, NetError> {
        match self.exchange(&Request::Classify {
            model: model.to_string(),
            deadline,
            graph: graph.clone(),
        })? {
            Response::Class(class) => Ok(class),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Per-class cosine scores for `graph` against the named model.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn scores(&mut self, model: &str, graph: &Graph) -> Result<Vec<f64>, NetError> {
        self.scores_opt(model, graph, None)
    }

    /// [`scores`](Self::scores) with a latency budget.
    ///
    /// # Errors
    ///
    /// As [`classify_within`](Self::classify_within).
    pub fn scores_within(
        &mut self,
        model: &str,
        graph: &Graph,
        budget: Duration,
    ) -> Result<Vec<f64>, NetError> {
        self.scores_opt(model, graph, Some(budget))
    }

    fn scores_opt(
        &mut self,
        model: &str,
        graph: &Graph,
        deadline: Option<Duration>,
    ) -> Result<Vec<f64>, NetError> {
        match self.exchange(&Request::Scores {
            model: model.to_string(),
            deadline,
            graph: graph.clone(),
        })? {
            Response::Scores(scores) => Ok(scores),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Classifies a batch in one frame, answered in order. At most
    /// [`wire::MAX_BATCH_GRAPHS`] graphs; an optional budget covers
    /// the whole batch.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify); the server answers the first
    /// engine failure for the whole batch.
    pub fn classify_batch(
        &mut self,
        model: &str,
        graphs: &[Graph],
        budget: Option<Duration>,
    ) -> Result<Vec<u32>, NetError> {
        match self.exchange(&Request::ClassifyBatch {
            model: model.to_string(),
            deadline: budget,
            graphs: graphs.to_vec(),
        })? {
            Response::Classes(classes) => Ok(classes),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Metadata of the named model: dimensionality, class count, and
    /// the snapshot version currently being served (watch this change
    /// across a hot-swap).
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn model_info(&mut self, model: &str) -> Result<ModelInfo, NetError> {
        match self.exchange(&Request::ModelInfo {
            model: model.to_string(),
        })? {
            Response::Info(info) => Ok(info),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// The server's merged Prometheus exposition: its `net_*` counters
    /// plus every hosted engine's registry labeled `model="name"`.
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn stats(&mut self) -> Result<String, NetError> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            _ => Err(NetError::UnexpectedResponse),
        }
    }
}
