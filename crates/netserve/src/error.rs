//! The `netserve` error surface.

use crate::wire::{ErrorCode, WireError};

/// Everything that can go wrong in the serving tier, client or server
/// side. Like `graphhd::Error`, the enum is `#[non_exhaustive]` so new
/// failure modes can be added without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A socket-level failure (connect, bind, read, write).
    Io {
        /// The [`std::io::ErrorKind`] of the underlying failure.
        kind: std::io::ErrorKind,
        /// The underlying error, rendered.
        message: String,
    },
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Remote {
        /// The typed error code from the frame.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The peer closed the connection where a frame was expected.
    Disconnected,
    /// The server answered with a response type the request does not
    /// produce — a protocol bug, not an operational failure.
    UnexpectedResponse,
    /// The registry does not host a model with the requested name.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
    /// The model name is empty, too long, or uses characters outside
    /// `[A-Za-z0-9_.-]` (the safe charset for wire frames and
    /// Prometheus label values).
    InvalidModelName {
        /// The rejected name.
        name: String,
    },
    /// A model with this name is already hosted.
    DuplicateModel {
        /// The conflicting name.
        name: String,
    },
    /// The hosted model has no versioned snapshot directory, so it
    /// cannot be reloaded.
    NotReloadable {
        /// The model that was asked to reload.
        name: String,
    },
    /// An engine or snapshot operation failed underneath the registry.
    Engine(graphhd::Error),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::Io { kind, message } => write!(f, "socket i/o failed ({kind:?}): {message}"),
            NetError::Wire(e) => write!(f, "wire protocol error: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            NetError::Disconnected => write!(f, "connection closed by peer"),
            NetError::UnexpectedResponse => {
                write!(f, "server answered with an unexpected response type")
            }
            NetError::UnknownModel { name } => write!(f, "no model named `{name}` is hosted"),
            NetError::InvalidModelName { name } => write!(
                f,
                "invalid model name `{name}` (want 1..=255 bytes of [A-Za-z0-9_.-])"
            ),
            NetError::DuplicateModel { name } => {
                write!(f, "a model named `{name}` is already hosted")
            }
            NetError::NotReloadable { name } => {
                write!(f, "model `{name}` has no versioned snapshot directory")
            }
            NetError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            NetError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<graphhd::Error> for NetError {
    fn from(e: graphhd::Error) -> Self {
        NetError::Engine(e)
    }
}
