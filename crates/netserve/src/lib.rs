//! Network serving tier for the GraphHD engine: a length-prefixed
//! binary wire protocol over std TCP, a thread-per-connection server,
//! a multi-model fleet registry, and zero-downtime hot-swap.
//!
//! This crate turns the process-local [`engine::Engine`] queue into a
//! server: many named models hosted in one process
//! ([`ModelRegistry`]), routed per-request by the model name carried
//! in each frame header, each behind an `ArcSwap`-style handle
//! ([`Swap`]) so a newly trained snapshot version (written with
//! `GraphHdModel::save_version`) replaces a serving model with zero
//! downtime — in-flight requests finish on the engine they started
//! on. Like the rest of the workspace it has **no dependencies
//! outside std** and no `unsafe`.
//!
//! The moving parts:
//!
//! - [`wire`]: the versioned frame protocol (grammar and error codes
//!   in `docs/PROTOCOL.md`), with strict bounded-read decoding that
//!   rejects oversized or malformed frames before allocating.
//! - [`Server`] / [`ServerBuilder`]: thread-per-connection TCP server
//!   with a connection-slot limit, graceful drain on shutdown, and
//!   `net.accept` / `net.read` / `net.write` fault points for chaos
//!   coverage (`docs/RESILIENCE.md`).
//! - [`ModelRegistry`]: the fleet — insert engines directly or from
//!   versioned snapshot directories, hot-swap with
//!   [`ModelRegistry::reload`], poll with
//!   [`ModelRegistry::spawn_watcher`], and scrape one merged
//!   Prometheus exposition with `model="name"` labels.
//! - [`Client`]: a small blocking client (connect, classify, scores,
//!   batched submit, model info, stats) speaking the same protocol.
//!
//! Per-request deadlines ride in the frame header and map onto the
//! engine's `_within` deadline machinery, so the `Block`/`Shed`/
//! `Timeout` overload policies configured per engine apply unchanged
//! to network traffic. Serving metrics (`net_*`) are registered in the
//! engines' telemetry registries and catalogued in `docs/TELEMETRY.md`.
//!
//! # Example
//!
//! ```
//! use graphcore::generate;
//! use std::sync::Arc;
//!
//! // Train a tiny model and host it.
//! let graphs = vec![generate::complete(6), generate::path(6)];
//! let engine = engine::Engine::builder()
//!     .dim(512)
//!     .threads(1)
//!     .fit(&graphs, &[0, 1], 2)
//!     .expect("fit");
//! let registry = Arc::new(netserve::ModelRegistry::new());
//! registry.insert("demo", engine).expect("insert");
//!
//! // Serve it and talk to it over loopback TCP.
//! let server = netserve::ServerBuilder::new(Arc::clone(&registry))
//!     .serve()
//!     .expect("serve");
//! let mut client = netserve::Client::connect(server.local_addr()).expect("connect");
//! let class = client.classify("demo", &generate::complete(6)).expect("classify");
//! assert!(class < 2);
//! server.shutdown();
//! ```

pub mod wire;

mod client;
mod error;
mod metrics;
mod registry;
mod server;

pub use client::Client;
pub use error::NetError;
pub use registry::{ModelRegistry, Swap, WatcherGuard};
pub use server::{Server, ServerBuilder, ServerStats};
pub use wire::{ErrorCode, ModelInfo, WireError};
