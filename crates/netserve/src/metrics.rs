//! Server-side serving metrics (connection and frame counters).
//!
//! These live in a server-owned [`Registry`], separate from the
//! per-engine registries: connection accounting belongs to the
//! listener, not to any one model. The stats scrape concatenates this
//! registry's exposition (unlabeled) with the fleet's merged
//! per-model exposition. The catalog rows live in `docs/TELEMETRY.md`.

use telemetry::{Counter, Gauge, Registry};

/// Counters and gauges owned by one [`Server`](crate::Server).
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    /// The registry the scrape handler renders.
    pub(crate) registry: Registry,
    /// Connections accepted into a slot (includes ones later failing).
    pub(crate) connections_accepted: Counter,
    /// Connections refused at the limit or dropped by `net.accept`.
    pub(crate) connections_refused: Counter,
    /// Connections currently holding a slot.
    pub(crate) connections_active: Gauge,
    /// Request frames successfully decoded.
    pub(crate) frames_in: Counter,
    /// Response frames successfully written.
    pub(crate) frames_out: Counter,
    /// Request frames that failed to decode (malformed, oversized,
    /// bad magic/version/type) or died mid-read.
    pub(crate) decode_errors: Counter,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let connections_accepted = Counter::new();
        let connections_refused = Counter::new();
        let connections_active = Gauge::new();
        let frames_in = Counter::new();
        let frames_out = Counter::new();
        let decode_errors = Counter::new();
        registry.register_counter(
            "net_connections_accepted",
            "Connections accepted into a connection slot",
            &connections_accepted,
        );
        registry.register_counter(
            "net_connections_refused",
            "Connections refused at the connection limit or dropped by fault injection",
            &connections_refused,
        );
        registry.register_gauge(
            "net_connections_active",
            "Connections currently holding a slot",
            &connections_active,
        );
        registry.register_counter(
            "net_frames_in",
            "Request frames successfully decoded",
            &frames_in,
        );
        registry.register_counter(
            "net_frames_out",
            "Response frames successfully written",
            &frames_out,
        );
        registry.register_counter(
            "net_decode_errors",
            "Request frames that failed to decode or died mid-read",
            &decode_errors,
        );
        Self {
            registry,
            connections_accepted,
            connections_refused,
            connections_active,
            frames_in,
            frames_out,
            decode_errors,
        }
    }
}
