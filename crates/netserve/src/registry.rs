//! The multi-model fleet registry and its zero-downtime hot-swap
//! handle.
//!
//! A [`ModelRegistry`] hosts many named [`Engine`]s in one process.
//! Each model sits behind a [`Swap`] — an `ArcSwap`-style atomic
//! handle: readers clone the current `Arc` under a lock held only for
//! the clone, and a reload publishes a replacement `Arc` the same way.
//! Readers therefore always observe a fully-constructed old-or-new
//! engine, in-flight requests finish on the engine they started on,
//! and the retired engine drains and joins its dispatcher when the
//! last in-flight holder drops (the engine's own drop-drain
//! semantics). The interleaving safety of this load/swap protocol is
//! model-checked against `parallel::model` in the crate's test suite.

use crate::error::NetError;
use crate::wire::{self, ModelInfo};
use engine::{Engine, EngineBuilder};
use graphhd::GraphHdModel;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;
use telemetry::Histogram;

/// An `ArcSwap`-style handle: a shared slot holding an `Arc<T>` that
/// can be atomically replaced while readers hold clones of the old
/// value.
///
/// Hand-rolled over `Mutex<Arc<T>>` (the workspace denies `unsafe`, so
/// no `AtomicPtr` epoch scheme): [`Swap::load`] locks only long enough
/// to clone the `Arc`, and [`Swap::store`] only long enough to replace
/// it, so neither side ever blocks on the other's *use* of the value —
/// only on the pointer-sized critical section.
#[derive(Debug)]
pub struct Swap<T> {
    current: Mutex<Arc<T>>,
}

impl<T> Swap<T> {
    /// Wraps an initial value.
    pub fn new(value: T) -> Self {
        Self {
            current: Mutex::new(Arc::new(value)),
        }
    }

    /// Returns a handle to the currently-published value. The lock is
    /// held only for the `Arc` clone; the value itself is used outside
    /// any critical section.
    #[must_use]
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Publishes `value`, returning the handle it replaced. Readers
    /// that loaded before the store keep the old value alive until
    /// they drop it.
    pub fn store(&self, value: T) -> Arc<T> {
        let mut slot = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, Arc::new(value))
    }
}

/// A served engine plus the snapshot version it was built from.
#[derive(Debug)]
pub(crate) struct ServedEngine {
    pub(crate) engine: Engine,
    /// `save_version` number, or 0 for engines inserted directly.
    pub(crate) version: u64,
}

/// Reload configuration for a versioned model: where its snapshot
/// directory lives and how to rebuild an engine around a new model.
#[derive(Debug, Clone)]
struct ReloadSpec {
    dir: PathBuf,
    builder: EngineBuilder,
}

/// One hosted model: the swap handle plus per-model serving metrics.
#[derive(Debug)]
pub(crate) struct ModelSlot {
    pub(crate) served: Swap<ServedEngine>,
    /// Server-side end-to-end latency (decode to response written).
    /// One histogram per model, re-registered into each new engine's
    /// registry on hot-swap so the series survives version changes.
    pub(crate) net_request_ns: Histogram,
    reload: Option<ReloadSpec>,
}

fn register_net_latency(engine: &Engine, histogram: &Histogram) {
    engine.registry().register_histogram(
        "net_request_ns",
        "Server-side request latency over the wire, nanoseconds (decode to response written)",
        histogram,
    );
}

/// Checks a model name against the safe charset shared by wire frames
/// and Prometheus label values.
fn validate_name(name: &str) -> Result<(), NetError> {
    let ok = !name.is_empty()
        && name.len() <= wire::MAX_NAME_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(NetError::InvalidModelName {
            name: name.to_string(),
        })
    }
}

/// Hosts many named engines in one process, with per-model routing,
/// zero-downtime hot-swap, snapshot-directory reload, and a merged
/// Prometheus scrape across the fleet.
///
/// The registry is shared between the server's connection threads and
/// any reload driver (a [`WatcherGuard`] thread or an operator call),
/// so every method takes `&self`.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    /// Insertion-ordered so `names()` and the merged scrape are
    /// deterministic. Lookup is a linear scan — fleets are tens of
    /// models, not millions.
    models: Mutex<Vec<(String, Arc<ModelSlot>)>>,
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, Arc<ModelSlot>)>> {
        self.models.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn insert_slot(
        &self,
        name: &str,
        engine: Engine,
        version: u64,
        reload: Option<ReloadSpec>,
    ) -> Result<(), NetError> {
        validate_name(name)?;
        let net_request_ns = Histogram::new();
        register_net_latency(&engine, &net_request_ns);
        let slot = Arc::new(ModelSlot {
            served: Swap::new(ServedEngine { engine, version }),
            net_request_ns,
            reload,
        });
        let mut models = self.lock();
        if models.iter().any(|(existing, _)| existing == name) {
            return Err(NetError::DuplicateModel {
                name: name.to_string(),
            });
        }
        models.push((name.to_string(), slot));
        Ok(())
    }

    /// Hosts `engine` under `name` (version 0, not reloadable).
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidModelName`] for a name outside the safe
    /// charset, [`NetError::DuplicateModel`] if the name is taken.
    pub fn insert(&self, name: &str, engine: Engine) -> Result<(), NetError> {
        self.insert_slot(name, engine, 0, None)
    }

    /// Hosts the newest snapshot version in `dir` under `name`, built
    /// with `builder`, and remembers both so [`reload`](Self::reload)
    /// can hot-swap in later versions. Returns the loaded version.
    ///
    /// # Errors
    ///
    /// Name and duplicate errors as [`insert`](Self::insert), plus
    /// [`NetError::Engine`] if no loadable snapshot exists in `dir` or
    /// the engine cannot be built.
    pub fn insert_versioned(
        &self,
        name: &str,
        dir: impl Into<PathBuf>,
        builder: EngineBuilder,
    ) -> Result<u64, NetError> {
        validate_name(name)?;
        let dir = dir.into();
        let (model, version) = GraphHdModel::load_latest(&dir)?;
        let engine = builder.clone().from_model(model)?;
        self.insert_slot(name, engine, version, Some(ReloadSpec { dir, builder }))?;
        Ok(version)
    }

    pub(crate) fn slot(&self, name: &str) -> Option<Arc<ModelSlot>> {
        self.lock()
            .iter()
            .find(|(existing, _)| existing == name)
            .map(|(_, slot)| Arc::clone(slot))
    }

    /// A handle to the currently-published engine for `name`, or
    /// `None` if the model is not hosted. The clone keeps serving the
    /// same version even if a hot-swap lands while it is in use.
    #[must_use]
    pub fn engine(&self, name: &str) -> Option<Engine> {
        self.slot(name)
            .map(|slot| slot.served.load().engine.clone())
    }

    /// The currently-served snapshot version for `name`.
    #[must_use]
    pub fn version(&self, name: &str) -> Option<u64> {
        self.slot(name).map(|slot| slot.served.load().version)
    }

    /// Hosted model names, in insertion order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.lock().iter().map(|(name, _)| name.clone()).collect()
    }

    /// Wire-level metadata for `name`: dimensionality, class count and
    /// served snapshot version.
    #[must_use]
    pub fn info(&self, name: &str) -> Option<ModelInfo> {
        let slot = self.slot(name)?;
        let served = slot.served.load();
        Some(ModelInfo {
            dim: served.engine.model().encoder().config().dim as u64,
            num_classes: u32::try_from(served.engine.num_classes()).unwrap_or(u32::MAX),
            version: served.version,
        })
    }

    /// Per-model server-side latency snapshot (`net_request_ns`), or
    /// `None` if the model is not hosted.
    #[must_use]
    pub fn net_latency(&self, name: &str) -> Option<telemetry::HistogramSnapshot> {
        self.slot(name).map(|slot| slot.net_request_ns.snapshot())
    }

    /// Checks `name`'s snapshot directory and hot-swaps to the newest
    /// version if it is newer than the serving one. Returns
    /// `Some(version)` when a swap happened, `None` when already
    /// current. In-flight requests finish on the engine they started
    /// on; the retired engine drains when its last holder drops.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownModel`] if `name` is not hosted,
    /// [`NetError::NotReloadable`] if it was inserted without a
    /// snapshot directory, [`NetError::Engine`] if loading or engine
    /// construction fails (the serving engine is left untouched).
    pub fn reload(&self, name: &str) -> Result<Option<u64>, NetError> {
        let slot = self.slot(name).ok_or_else(|| NetError::UnknownModel {
            name: name.to_string(),
        })?;
        let spec = slot
            .reload
            .as_ref()
            .ok_or_else(|| NetError::NotReloadable {
                name: name.to_string(),
            })?;
        let (model, version) = GraphHdModel::load_latest(&spec.dir)?;
        if version <= slot.served.load().version {
            return Ok(None);
        }
        // Build and register fully before publishing: a reader that
        // loads mid-reload sees either the complete old engine or the
        // complete new one, never a half-initialized value.
        let engine = spec.builder.clone().from_model(model)?;
        register_net_latency(&engine, &slot.net_request_ns);
        let retired = slot.served.store(ServedEngine { engine, version });
        drop(retired);
        Ok(Some(version))
    }

    /// Runs [`reload`](Self::reload) over every reloadable model,
    /// returning `(name, new_version)` for each completed swap.
    /// Per-model failures (for example a snapshot directory that is
    /// momentarily mid-write) are skipped, matching `load_latest`'s
    /// newest-loadable fallback semantics — the next pass retries.
    #[must_use]
    pub fn reload_all(&self) -> Vec<(String, u64)> {
        let names = self.names();
        let mut swapped = Vec::new();
        for name in names {
            if let Ok(Some(version)) = self.reload(&name) {
                swapped.push((name, version));
            }
        }
        swapped
    }

    /// Spawns a polling watcher thread that calls
    /// [`reload_all`](Self::reload_all) every `interval` until the
    /// returned guard drops. This is the `save_version`-directory
    /// watch path: a trainer writes `model.v{N}.ghd` files, the
    /// watcher picks each one up and hot-swaps it into service.
    #[must_use]
    pub fn spawn_watcher(self: &Arc<Self>, interval: Duration) -> WatcherGuard {
        let registry = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("netserve-watcher".to_string())
            .spawn(move || loop {
                let (flag, signal) = &*stop_thread;
                {
                    let guard = flag.lock().unwrap_or_else(PoisonError::into_inner);
                    if *guard {
                        return;
                    }
                    let (guard, _) = signal
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    if *guard {
                        return;
                    }
                }
                let _ = registry.reload_all();
            })
            .ok();
        WatcherGuard { stop, handle }
    }

    /// Renders one coherent Prometheus exposition across every hosted
    /// engine: each engine's registry (including the per-model
    /// `net_request_ns` series) is emitted with a `model="name"` label
    /// injected into every sample, with `# HELP`/`# TYPE` headers
    /// emitted once per metric name. The output passes
    /// `telemetry::validate_exposition`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let models = self.lock().clone();
        let mut out = String::new();
        let mut seen = std::collections::BTreeSet::new();
        for (name, slot) in models {
            let exposition = slot.served.load().engine.registry().render_prometheus();
            merge_labeled(&mut out, &exposition, &name, &mut seen);
        }
        out
    }
}

/// Appends `exposition` to `out` with `model="label"` injected into
/// every sample line, keeping only the first `# HELP`/`# TYPE` pair
/// per metric name (tracked in `seen`) so the merged text stays a
/// valid exposition.
pub(crate) fn merge_labeled(
    out: &mut String,
    exposition: &str,
    label: &str,
    seen: &mut std::collections::BTreeSet<String>,
) {
    // The renderer emits `# HELP` immediately before `# TYPE`: keep
    // the pair the first time a metric name appears, drop repeats.
    let mut keep_type_for: Option<String> = None;
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let metric = rest.split(' ').next().unwrap_or_default();
            keep_type_for = seen.insert(metric.to_string()).then(|| metric.to_string());
            if keep_type_for.is_some() {
                out.push_str(line);
                out.push('\n');
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let metric = rest.split(' ').next().unwrap_or_default();
            if keep_type_for.as_deref() == Some(metric) {
                out.push_str(line);
                out.push('\n');
            }
        } else if !line.is_empty() {
            match line.split_once('{') {
                Some((sample_name, rest)) => {
                    // name{labels} value  →  name{model="x",labels} value
                    out.push_str(sample_name);
                    out.push('{');
                    out.push_str(&format!("model=\"{label}\","));
                    out.push_str(rest);
                }
                None => match line.split_once(' ') {
                    // name value  →  name{model="x"} value
                    Some((sample_name, value)) => {
                        out.push_str(&format!("{sample_name}{{model=\"{label}\"}} {value}"));
                    }
                    None => out.push_str(line),
                },
            }
            out.push('\n');
        }
    }
}

/// Stops and joins the watcher thread when dropped. Call
/// [`WatcherGuard::stop`] to do the same eagerly.
#[derive(Debug)]
pub struct WatcherGuard {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WatcherGuard {
    /// Signals the watcher to stop and joins it. Idempotent.
    pub fn stop(&mut self) {
        let (flag, signal) = &*self.stop;
        *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
        signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WatcherGuard {
    fn drop(&mut self) {
        self.stop();
    }
}
