//! The length-prefixed binary wire protocol (version 1).
//!
//! Every message on a connection is one **frame**: a fixed 20-byte
//! header followed by the model name and the payload, all integers
//! little-endian. The full grammar, the versioning rules and the error
//! code table live in `docs/PROTOCOL.md`; this module is the single
//! encoder/decoder both the server and the [`Client`](crate::Client)
//! use, so the two sides cannot drift apart.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GHWP"
//! 4       1     protocol version (1)
//! 5       1     frame type
//! 6       2     model name length   (u16, <= 255)
//! 8       8     deadline budget, µs (u64, 0 = none; requests only)
//! 16      4     payload length      (u32, <= 16 MiB)
//! 20      -     model name bytes (UTF-8), then payload bytes
//! ```
//!
//! Decoding is **strictly bounded**: the header is validated before a
//! single payload byte is allocated (magic, version, known frame type,
//! name and payload caps), payloads are read with exact-length reads,
//! and every embedded count re-checks against the bytes that actually
//! arrived — the same discipline as the snapshot loader, so a malformed
//! or adversarial frame is answered with a typed error, never with an
//! oversized allocation or a panic.

use graphcore::Graph;
use std::io::{Read, Write};
use std::time::Duration;

/// First four bytes of every frame ("GraphHD Wire Protocol").
pub const MAGIC: [u8; 4] = *b"GHWP";

/// The protocol version this build speaks. A frame declaring a
/// different version is rejected with
/// [`WireError::UnsupportedVersion`]; see `docs/PROTOCOL.md` for the
/// compatibility rules.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Longest accepted model name, in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// Largest accepted frame payload (16 MiB). A header declaring more is
/// rejected before any payload allocation.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Most graphs accepted in one batched-submit frame.
pub const MAX_BATCH_GRAPHS: usize = 4096;

/// Frame type tags. Requests use the low range, responses the high
/// range; an unknown tag is a decode error on either side.
mod tag {
    pub const CLASSIFY: u8 = 0x01;
    pub const SCORES: u8 = 0x02;
    pub const CLASSIFY_BATCH: u8 = 0x03;
    pub const MODEL_INFO: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const R_CLASS: u8 = 0x81;
    pub const R_SCORES: u8 = 0x82;
    pub const R_CLASSES: u8 = 0x83;
    pub const R_INFO: u8 = 0x84;
    pub const R_STATS: u8 = 0x85;
    pub const R_ERROR: u8 = 0xFF;
}

/// Typed error codes carried by an error response frame (`0xFF`). The
/// numeric values are part of the wire contract (`docs/PROTOCOL.md`)
/// and must never be reused for a different meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The frame could not be decoded (bad magic/version/type, bounds
    /// exceeded, malformed payload). The server closes the connection
    /// after sending this — the stream framing can no longer be trusted.
    BadFrame,
    /// The frame named a model the registry does not host.
    UnknownModel,
    /// The serving engine for the model has shut down.
    ShutDown,
    /// The request was shed by the engine's overload policy.
    Overloaded,
    /// The request's deadline passed before it was served.
    DeadlineExceeded,
    /// The request's batch failed (a crashed dispatcher iteration).
    TaskFailed,
    /// The serving engine is terminally poisoned.
    Poisoned,
    /// The server refused the connection: the connection limit was
    /// reached. Sent once on accept, then the connection is closed.
    ConnectionLimit,
    /// The server is draining for shutdown.
    Draining,
    /// An internal invariant did not hold on the server.
    Internal,
}

impl ErrorCode {
    /// The on-wire numeric value.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnknownModel => 2,
            ErrorCode::ShutDown => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::DeadlineExceeded => 5,
            ErrorCode::TaskFailed => 6,
            ErrorCode::Poisoned => 7,
            ErrorCode::ConnectionLimit => 8,
            ErrorCode::Draining => 9,
            ErrorCode::Internal => 10,
        }
    }

    /// Decodes an on-wire value; unknown values map to
    /// [`ErrorCode::Internal`] so a newer server's codes degrade
    /// gracefully instead of failing the decode.
    #[must_use]
    pub fn from_u16(value: u16) -> Self {
        match value {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnknownModel,
            3 => ErrorCode::ShutDown,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::DeadlineExceeded,
            6 => ErrorCode::TaskFailed,
            7 => ErrorCode::Poisoned,
            8 => ErrorCode::ConnectionLimit,
            9 => ErrorCode::Draining,
            _ => ErrorCode::Internal,
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad frame",
            ErrorCode::UnknownModel => "unknown model",
            ErrorCode::ShutDown => "engine shut down",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::TaskFailed => "task failed",
            ErrorCode::Poisoned => "engine poisoned",
            ErrorCode::ConnectionLimit => "connection limit reached",
            ErrorCode::Draining => "server draining",
            ErrorCode::Internal => "internal server error",
        };
        f.write_str(name)
    }
}

/// Ways a frame can fail to decode. The server answers a request-side
/// decode failure with one [`ErrorCode::BadFrame`] frame and closes the
/// connection; the client surfaces it as
/// [`NetError::Wire`](crate::NetError::Wire).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream did not start a frame with the protocol magic.
    BadMagic,
    /// The frame declares a protocol version this build cannot speak.
    UnsupportedVersion {
        /// The version found in the header.
        found: u8,
    },
    /// The frame type tag is not one this side understands.
    UnknownType {
        /// The tag found in the header.
        found: u8,
    },
    /// A declared length exceeds its bound (name, payload, graph or
    /// batch counts). Rejected before allocation.
    Oversized {
        /// Which field exceeded its bound.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The maximum this build accepts.
        max: u64,
    },
    /// A payload field failed validation (truncated counts, non-UTF-8
    /// name, out-of-range edge endpoints, trailing bytes).
    Malformed {
        /// Which field was invalid.
        what: &'static str,
    },
    /// An I/O failure while reading or writing the frame.
    Io {
        /// The [`std::io::ErrorKind`] of the underlying failure.
        kind: std::io::ErrorKind,
        /// The underlying error, rendered.
        message: String,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "frame does not start with the GHWP magic"),
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            WireError::UnknownType { found } => write!(f, "unknown frame type 0x{found:02x}"),
            WireError::Oversized {
                what,
                declared,
                max,
            } => write!(f, "{what} declares {declared}, maximum is {max}"),
            WireError::Malformed { what } => write!(f, "malformed frame: {what}"),
            WireError::Io { kind, message } => write!(f, "frame i/o failed ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// A decoded request frame, as the server sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one graph against the named model.
    Classify {
        /// Target model name.
        model: String,
        /// Optional latency budget from the frame header.
        deadline: Option<Duration>,
        /// The graph to classify.
        graph: Graph,
    },
    /// Full per-class score vector for one graph.
    Scores {
        /// Target model name.
        model: String,
        /// Optional latency budget from the frame header.
        deadline: Option<Duration>,
        /// The graph to score.
        graph: Graph,
    },
    /// Classify a batch of graphs in one frame.
    ClassifyBatch {
        /// Target model name.
        model: String,
        /// Optional latency budget covering the whole batch.
        deadline: Option<Duration>,
        /// The graphs to classify, answered in order.
        graphs: Vec<Graph>,
    },
    /// Metadata of the named model (dimension, classes, version).
    ModelInfo {
        /// Target model name.
        model: String,
    },
    /// Scrape the fleet-wide Prometheus exposition (empty model name).
    Stats,
}

/// Model metadata carried by an info response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelInfo {
    /// Hypervector dimensionality of the served model.
    pub dim: u64,
    /// Number of classes the model scores against.
    pub num_classes: u32,
    /// Served snapshot version (0 when the model was not loaded from a
    /// versioned directory).
    pub version: u64,
}

/// A decoded response frame, as the client sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The winning class id.
    Class(u32),
    /// The per-class cosine score vector.
    Scores(Vec<f64>),
    /// Per-graph class ids for a batched submit, in request order.
    Classes(Vec<u32>),
    /// Model metadata.
    Info(ModelInfo),
    /// The merged Prometheus text exposition.
    Stats(String),
    /// A typed failure.
    Error {
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF before the
/// first byte to `Ok(false)` — the caller distinguishes "peer closed
/// between frames" from "stream died mid-frame".
fn read_header(reader: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Malformed {
                    what: "stream ended inside a frame header",
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

fn read_exact(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Malformed {
                what: "stream ended inside a frame body",
            }
        } else {
            e.into()
        }
    })
}

/// A raw frame: validated header fields plus the undecoded body.
#[derive(Debug)]
struct RawFrame {
    kind: u8,
    name: String,
    deadline_us: u64,
    payload: Vec<u8>,
}

/// Reads one raw frame with full header validation and bounded
/// allocation. `Ok(None)` is a clean EOF before any header byte.
fn read_raw(reader: &mut impl Read) -> Result<Option<RawFrame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_header(reader, &mut header)? {
        return Ok(None);
    }
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion { found: header[4] });
    }
    let kind = header[5];
    let name_len = u16::from_le_bytes([header[6], header[7]]) as usize;
    if name_len > MAX_NAME_LEN {
        return Err(WireError::Oversized {
            what: "model name length",
            declared: name_len as u64,
            max: MAX_NAME_LEN as u64,
        });
    }
    let deadline_us = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    let payload_len = u32::from_le_bytes([header[16], header[17], header[18], header[19]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            what: "payload length",
            declared: payload_len as u64,
            max: MAX_PAYLOAD as u64,
        });
    }
    let mut name_bytes = vec![0u8; name_len];
    read_exact(reader, &mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(|_| WireError::Malformed {
        what: "model name is not UTF-8",
    })?;
    let mut payload = vec![0u8; payload_len];
    read_exact(reader, &mut payload)?;
    Ok(Some(RawFrame {
        kind,
        name,
        deadline_us,
        payload,
    }))
}

/// Bounded cursor over a frame payload: every read checks the
/// remaining bytes, and [`Cursor::finish`] rejects trailing garbage.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Malformed { what })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at != self.bytes.len() {
            return Err(WireError::Malformed {
                what: "payload continues past the declared content",
            });
        }
        Ok(())
    }
}

/// Decodes one graph: `u32 n`, `u32 m`, then `m` little-endian
/// `(u32, u32)` edges validated against `n` by the graph constructor.
fn read_graph(cursor: &mut Cursor<'_>) -> Result<Graph, WireError> {
    let n = cursor.u32("graph vertex count")? as usize;
    let m = cursor.u32("graph edge count")? as usize;
    // Eight bytes per edge: the declared count must fit in the payload
    // that actually arrived, so a lying header cannot drive allocation.
    let bytes = m.checked_mul(8).ok_or(WireError::Malformed {
        what: "graph edge count overflows",
    })?;
    let edges = cursor.take(bytes, "graph edge list")?;
    let pairs = edges.chunks_exact(8).map(|c| {
        (
            u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
        )
    });
    Graph::from_edges(n, pairs).map_err(|_| WireError::Malformed {
        what: "graph edge endpoint out of range",
    })
}

fn write_graph(out: &mut Vec<u8>, graph: &Graph) {
    out.extend_from_slice(&(graph.vertex_count() as u32).to_le_bytes());
    out.extend_from_slice(&(graph.edge_count() as u32).to_le_bytes());
    for (u, v) in graph.edges() {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn deadline_from(deadline_us: u64) -> Option<Duration> {
    (deadline_us > 0).then(|| Duration::from_micros(deadline_us))
}

fn deadline_to(deadline: Option<Duration>) -> u64 {
    // Zero means "no deadline" on the wire, so a zero budget is bumped
    // to the smallest representable one rather than silently removed.
    deadline.map_or(0, |d| {
        u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1)
    })
}

/// Reads one request frame. `Ok(None)` is a clean close between
/// frames.
///
/// # Errors
///
/// Returns [`WireError`] for I/O failures and malformed, oversized or
/// unknown frames; the caller answers with
/// [`ErrorCode::BadFrame`] and closes.
pub fn read_request(reader: &mut impl Read) -> Result<Option<Request>, WireError> {
    let Some(raw) = read_raw(reader)? else {
        return Ok(None);
    };
    let deadline = deadline_from(raw.deadline_us);
    let mut cursor = Cursor::new(&raw.payload);
    let request = match raw.kind {
        tag::CLASSIFY => {
            let graph = read_graph(&mut cursor)?;
            Request::Classify {
                model: raw.name,
                deadline,
                graph,
            }
        }
        tag::SCORES => {
            let graph = read_graph(&mut cursor)?;
            Request::Scores {
                model: raw.name,
                deadline,
                graph,
            }
        }
        tag::CLASSIFY_BATCH => {
            let count = cursor.u32("batch graph count")? as usize;
            if count > MAX_BATCH_GRAPHS {
                return Err(WireError::Oversized {
                    what: "batch graph count",
                    declared: count as u64,
                    max: MAX_BATCH_GRAPHS as u64,
                });
            }
            let mut graphs = Vec::with_capacity(count.min(raw.payload.len() / 8 + 1));
            for _ in 0..count {
                graphs.push(read_graph(&mut cursor)?);
            }
            Request::ClassifyBatch {
                model: raw.name,
                deadline,
                graphs,
            }
        }
        tag::MODEL_INFO => Request::ModelInfo { model: raw.name },
        tag::STATS => Request::Stats,
        found => return Err(WireError::UnknownType { found }),
    };
    cursor.finish()?;
    Ok(Some(request))
}

/// Reads one response frame. `Ok(None)` is a clean close between
/// frames (the server went away).
///
/// # Errors
///
/// Returns [`WireError`] for I/O failures and malformed, oversized or
/// unknown frames.
pub fn read_response(reader: &mut impl Read) -> Result<Option<Response>, WireError> {
    let Some(raw) = read_raw(reader)? else {
        return Ok(None);
    };
    let mut cursor = Cursor::new(&raw.payload);
    let response = match raw.kind {
        tag::R_CLASS => Response::Class(cursor.u32("class id")?),
        tag::R_SCORES => {
            let count = cursor.u32("score count")? as usize;
            let bytes = count.checked_mul(8).ok_or(WireError::Malformed {
                what: "score count overflows",
            })?;
            let raw_scores = cursor.take(bytes, "score vector")?;
            Response::Scores(
                raw_scores
                    .chunks_exact(8)
                    .map(|c| {
                        f64::from_bits(u64::from_le_bytes([
                            c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                        ]))
                    })
                    .collect(),
            )
        }
        tag::R_CLASSES => {
            let count = cursor.u32("class count")? as usize;
            let bytes = count.checked_mul(4).ok_or(WireError::Malformed {
                what: "class count overflows",
            })?;
            let raw_classes = cursor.take(bytes, "class list")?;
            Response::Classes(
                raw_classes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            )
        }
        tag::R_INFO => {
            let dim = cursor.u64("model dimension")?;
            let num_classes = cursor.u32("model class count")?;
            let version = cursor.u64("model version")?;
            Response::Info(ModelInfo {
                dim,
                num_classes,
                version,
            })
        }
        tag::R_STATS => {
            let len = cursor.u32("stats text length")? as usize;
            let text = cursor.take(len, "stats text")?;
            Response::Stats(
                String::from_utf8(text.to_vec()).map_err(|_| WireError::Malformed {
                    what: "stats text is not UTF-8",
                })?,
            )
        }
        tag::R_ERROR => {
            let code =
                ErrorCode::from_u16(u16::try_from(cursor.u32("error code")?).unwrap_or(u16::MAX));
            let len = cursor.u32("error message length")? as usize;
            let text = cursor.take(len, "error message")?;
            Response::Error {
                code,
                message: String::from_utf8_lossy(text).into_owned(),
            }
        }
        found => return Err(WireError::UnknownType { found }),
    };
    cursor.finish()?;
    Ok(Some(response))
}

/// Assembles one frame into a buffer: header, name, payload.
fn frame_bytes(kind: u8, name: &str, deadline_us: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + name.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(&deadline_us.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a request frame into bytes (exposed for the protocol tests;
/// the [`Client`](crate::Client) uses [`write_request`]).
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    let (kind, name, deadline) = match request {
        Request::Classify {
            model,
            deadline,
            graph,
        } => {
            write_graph(&mut payload, graph);
            (tag::CLASSIFY, model.as_str(), *deadline)
        }
        Request::Scores {
            model,
            deadline,
            graph,
        } => {
            write_graph(&mut payload, graph);
            (tag::SCORES, model.as_str(), *deadline)
        }
        Request::ClassifyBatch {
            model,
            deadline,
            graphs,
        } => {
            payload.extend_from_slice(&(graphs.len() as u32).to_le_bytes());
            for graph in graphs {
                write_graph(&mut payload, graph);
            }
            (tag::CLASSIFY_BATCH, model.as_str(), *deadline)
        }
        Request::ModelInfo { model } => (tag::MODEL_INFO, model.as_str(), None),
        Request::Stats => (tag::STATS, "", None),
    };
    frame_bytes(kind, name, deadline_to(deadline), &payload)
}

/// Encodes a response frame into bytes.
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match response {
        Response::Class(class) => {
            payload.extend_from_slice(&class.to_le_bytes());
            tag::R_CLASS
        }
        Response::Scores(scores) => {
            payload.extend_from_slice(&(scores.len() as u32).to_le_bytes());
            for score in scores {
                payload.extend_from_slice(&score.to_bits().to_le_bytes());
            }
            tag::R_SCORES
        }
        Response::Classes(classes) => {
            payload.extend_from_slice(&(classes.len() as u32).to_le_bytes());
            for class in classes {
                payload.extend_from_slice(&class.to_le_bytes());
            }
            tag::R_CLASSES
        }
        Response::Info(info) => {
            payload.extend_from_slice(&info.dim.to_le_bytes());
            payload.extend_from_slice(&info.num_classes.to_le_bytes());
            payload.extend_from_slice(&info.version.to_le_bytes());
            tag::R_INFO
        }
        Response::Stats(text) => {
            payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
            payload.extend_from_slice(text.as_bytes());
            tag::R_STATS
        }
        Response::Error { code, message } => {
            payload.extend_from_slice(&u32::from(code.as_u16()).to_le_bytes());
            payload.extend_from_slice(&(message.len() as u32).to_le_bytes());
            payload.extend_from_slice(message.as_bytes());
            tag::R_ERROR
        }
    };
    frame_bytes(kind, "", 0, &payload)
}

/// Writes one request frame as a single `write_all`.
///
/// # Errors
///
/// Returns [`WireError::Io`] if the write fails.
pub fn write_request(writer: &mut impl Write, request: &Request) -> Result<(), WireError> {
    writer.write_all(&encode_request(request))?;
    Ok(())
}

/// Writes one response frame as a single `write_all`.
///
/// # Errors
///
/// Returns [`WireError::Io`] if the write fails.
pub fn write_response(writer: &mut impl Write, response: &Response) -> Result<(), WireError> {
    writer.write_all(&encode_response(response))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::generate;

    fn roundtrip_request(request: Request) {
        let bytes = encode_request(&request);
        let decoded = read_request(&mut bytes.as_slice())
            .expect("decodes")
            .expect("one frame");
        assert_eq!(decoded, request);
    }

    fn roundtrip_response(response: Response) {
        let bytes = encode_response(&response);
        let decoded = read_response(&mut bytes.as_slice())
            .expect("decodes")
            .expect("one frame");
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_round_trip() {
        let graph = generate::complete(5);
        roundtrip_request(Request::Classify {
            model: "mutag".into(),
            deadline: None,
            graph: graph.clone(),
        });
        roundtrip_request(Request::Scores {
            model: "m".into(),
            deadline: Some(Duration::from_micros(1500)),
            graph: generate::path(7),
        });
        roundtrip_request(Request::ClassifyBatch {
            model: "fleet-0".into(),
            deadline: Some(Duration::from_millis(20)),
            graphs: vec![graph, generate::path(3), generate::complete(2)],
        });
        roundtrip_request(Request::ModelInfo {
            model: "info".into(),
        });
        roundtrip_request(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Class(3));
        roundtrip_response(Response::Scores(vec![0.25, -1.0, f64::MAX, 0.0]));
        roundtrip_response(Response::Classes(vec![0, 1, 2, 1]));
        roundtrip_response(Response::Info(ModelInfo {
            dim: 10_000,
            num_classes: 2,
            version: 7,
        }));
        roundtrip_response(Response::Stats("# TYPE x counter\nx 1\n".into()));
        roundtrip_response(Response::Error {
            code: ErrorCode::UnknownModel,
            message: "no model `x`".into(),
        });
    }

    #[test]
    fn zero_deadline_survives_the_wire() {
        // Duration::ZERO means "already expired", which must not decode
        // back as "no deadline".
        let bytes = encode_request(&Request::Classify {
            model: "m".into(),
            deadline: Some(Duration::ZERO),
            graph: generate::path(2),
        });
        match read_request(&mut bytes.as_slice()).expect("decodes") {
            Some(Request::Classify { deadline, .. }) => {
                assert_eq!(deadline, Some(Duration::from_micros(1)));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_error() {
        assert_eq!(read_request(&mut [].as_slice()).expect("clean eof"), None);
        let bytes = encode_request(&Request::Stats);
        for cut in 1..bytes.len() {
            let err = read_request(&mut &bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(err, WireError::Malformed { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn header_bounds_are_enforced_before_allocation() {
        let mut bytes = encode_request(&Request::Stats);
        bytes[0] = b'X';
        assert_eq!(
            read_request(&mut bytes.as_slice()).unwrap_err(),
            WireError::BadMagic
        );

        let mut bytes = encode_request(&Request::Stats);
        bytes[4] = 9;
        assert_eq!(
            read_request(&mut bytes.as_slice()).unwrap_err(),
            WireError::UnsupportedVersion { found: 9 }
        );

        let mut bytes = encode_request(&Request::Stats);
        bytes[5] = 0x60;
        assert_eq!(
            read_request(&mut bytes.as_slice()).unwrap_err(),
            WireError::UnknownType { found: 0x60 }
        );

        // A header lying about an enormous payload is rejected without
        // the body ever being read (or allocated).
        let mut bytes = encode_request(&Request::Stats);
        bytes[16..20].copy_from_slice(&(u32::MAX).to_le_bytes());
        match read_request(&mut bytes.as_slice()).unwrap_err() {
            WireError::Oversized { what, .. } => assert_eq!(what, "payload length"),
            other => panic!("unexpected: {other:?}"),
        }

        let mut bytes = encode_request(&Request::Stats);
        bytes[6..8].copy_from_slice(&(u16::MAX).to_le_bytes());
        match read_request(&mut bytes.as_slice()).unwrap_err() {
            WireError::Oversized { what, .. } => assert_eq!(what, "model name length"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn payload_trailing_bytes_are_rejected() {
        let graph = generate::path(4);
        let mut bytes = encode_request(&Request::Classify {
            model: "m".into(),
            deadline: None,
            graph,
        });
        // Declare one more payload byte and append it: decodes the
        // graph, then trips the trailing-content check.
        let len = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
        bytes[16..20].copy_from_slice(&(len + 1).to_le_bytes());
        bytes.push(0xAA);
        assert_eq!(
            read_request(&mut bytes.as_slice()).unwrap_err(),
            WireError::Malformed {
                what: "payload continues past the declared content"
            }
        );
    }

    #[test]
    fn graph_with_out_of_range_edge_is_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&9u32.to_le_bytes());
        let bytes = frame_bytes(tag::CLASSIFY, "m", 0, &payload);
        assert_eq!(
            read_request(&mut bytes.as_slice()).unwrap_err(),
            WireError::Malformed {
                what: "graph edge endpoint out of range"
            }
        );
    }

    #[test]
    fn batch_count_is_bounded() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(MAX_BATCH_GRAPHS as u32 + 1).to_le_bytes());
        let bytes = frame_bytes(tag::CLASSIFY_BATCH, "m", 0, &payload);
        match read_request(&mut bytes.as_slice()).unwrap_err() {
            WireError::Oversized { what, .. } => assert_eq!(what, "batch graph count"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn error_codes_round_trip_and_degrade() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::UnknownModel,
            ErrorCode::ShutDown,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::TaskFailed,
            ErrorCode::Poisoned,
            ErrorCode::ConnectionLimit,
            ErrorCode::Draining,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
        }
        assert_eq!(ErrorCode::from_u16(40_000), ErrorCode::Internal);
    }
}
