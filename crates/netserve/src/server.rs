//! The thread-per-connection TCP server.
//!
//! One acceptor thread owns the `TcpListener`; each accepted
//! connection gets its own thread, a connection **slot** (bounded by
//! [`ServerBuilder::max_connections`]) and a frame loop that decodes
//! requests, routes them by model name through the shared
//! [`ModelRegistry`], and answers on the same stream. Slots are
//! released by a drop guard, so neither a handler panic (including an
//! injected one — `net.read`/`net.write` fault points live in the
//! frame loop) nor a poisoned stream can leak one.
//!
//! [`Server::shutdown`] is a graceful drain: the accept loop stops,
//! connection threads notice the flag at their next poll tick (a
//! short read timeout keeps idle connections responsive), finish the
//! request in flight, and the call returns once every slot is free.

use crate::error::NetError;
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use crate::wire::{self, ErrorCode, Request, Response};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often blocked reads wake to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long a connection waits for the rest of a frame once its first
/// byte has arrived, before giving up on the peer.
const FRAME_PATIENCE: Duration = Duration::from_secs(10);

/// Builds a [`Server`]: listen address, connection limit, and the
/// model fleet it serves.
#[derive(Debug)]
pub struct ServerBuilder {
    registry: Arc<ModelRegistry>,
    addr: String,
    max_connections: usize,
}

impl ServerBuilder {
    /// A builder serving `registry`, listening on an OS-assigned
    /// loopback port (`127.0.0.1:0`) with a 64-connection limit.
    #[must_use]
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        Self {
            registry,
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
        }
    }

    /// Sets the listen address (e.g. `"0.0.0.0:7878"`).
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection-slot limit; connections beyond it are
    /// answered with one [`ErrorCode::ConnectionLimit`] frame and
    /// closed. A limit of 0 is treated as 1.
    #[must_use]
    pub fn max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Applies the environment overrides `GRAPHHD_NET_ADDR` (listen
    /// address) and `GRAPHHD_NET_MAX_CONNS` (connection limit); unset
    /// or unparsable values leave the builder unchanged. Documented in
    /// `docs/ENV.md`.
    #[must_use]
    pub fn from_env(mut self) -> Self {
        if let Ok(addr) = std::env::var("GRAPHHD_NET_ADDR") {
            if !addr.is_empty() {
                self.addr = addr;
            }
        }
        if let Ok(max) = std::env::var("GRAPHHD_NET_MAX_CONNS") {
            if let Ok(max) = max.parse::<usize>() {
                self.max_connections = max.max(1);
            }
        }
        self
    }

    /// Binds the listener and starts the acceptor thread.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the address cannot be bound.
    pub fn serve(self) -> Result<Server, NetError> {
        let listener = TcpListener::bind(&self.addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            registry: self.registry,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            slots: Mutex::new(0),
            drained: Condvar::new(),
            max_connections: self.max_connections,
        });
        let acceptor_inner = Arc::clone(&inner);
        let acceptor = std::thread::Builder::new()
            .name("netserve-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &acceptor_inner))
            .map_err(NetError::from)?;
        Ok(Server {
            inner,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
        })
    }
}

/// Shared state between the acceptor, the connection threads and the
/// owning [`Server`] handle.
#[derive(Debug)]
struct Inner {
    registry: Arc<ModelRegistry>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    /// Occupied connection slots; paired with `drained` so shutdown
    /// can wait for the count to reach zero.
    slots: Mutex<usize>,
    drained: Condvar,
    max_connections: usize,
}

/// A running server: accepting connections from the moment
/// [`ServerBuilder::serve`] returns until [`Server::shutdown`] (or
/// drop) drains it.
#[derive(Debug)]
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// A point-in-time reading of the server's connection and frame
/// counters (the same numbers the scrape exposes as `net_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Connections accepted into a slot.
    pub connections_accepted: u64,
    /// Connections refused at the limit or dropped by `net.accept`.
    pub connections_refused: u64,
    /// Connections currently holding a slot.
    pub connections_active: i64,
    /// Request frames successfully decoded.
    pub frames_in: u64,
    /// Response frames successfully written.
    pub frames_out: u64,
    /// Request frames that failed to decode or died mid-read.
    pub decode_errors: u64,
}

impl Server {
    /// The bound listen address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The model fleet this server routes to.
    #[must_use]
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// Current connection and frame counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let m = &self.inner.metrics;
        ServerStats {
            connections_accepted: m.connections_accepted.get(),
            connections_refused: m.connections_refused.get(),
            connections_active: m.connections_active.get(),
            frames_in: m.frames_in.get(),
            frames_out: m.frames_out.get(),
            decode_errors: m.decode_errors.get(),
        }
    }

    /// The full scrape: the server's own `net_*` registry followed by
    /// the fleet's merged per-model exposition — the same text a
    /// [`Request::Stats`] frame returns over the wire. Passes
    /// `telemetry::validate_exposition`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = self.inner.metrics.registry.render_prometheus();
        out.push_str(&self.inner.registry.render_prometheus());
        out
    }

    /// Graceful drain: stops accepting, lets in-flight requests
    /// finish, and returns once every connection slot is free.
    /// Idempotent; dropping the server does the same.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept with a
        // throwaway connection; it re-checks the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self
            .acceptor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
        let mut slots = self
            .inner
            .slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *slots > 0 {
            let (next, _timeout) = self
                .inner
                .drained
                .wait_timeout(slots, POLL_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
            slots = next;
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Releases a connection slot (and wakes a draining shutdown) no
/// matter how the connection thread ends.
struct SlotGuard {
    inner: Arc<Inner>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        {
            let mut slots = self
                .inner
                .slots
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *slots = slots.saturating_sub(1);
        }
        self.inner.metrics.connections_active.dec();
        self.inner.drained.notify_all();
    }
}

/// Closes a connection without clobbering data in flight: half-closes
/// the write side (flushing the final frame to the peer) and drains
/// whatever the peer already sent. Dropping a socket with unread
/// received bytes sends an RST, which can destroy the typed error
/// frame before the client reads it — this is the "closes cleanly"
/// half of the protocol contract.
fn linger_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut scratch = [0u8; 4096];
    let give_up_at = Instant::now() + Duration::from_secs(2);
    loop {
        match (&mut &*stream).read(&mut scratch) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
        if Instant::now() >= give_up_at {
            return;
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // Transient accept failure (e.g. the peer vanished between
            // SYN and accept); keep serving.
            continue;
        };
        // Contain injected `net.accept` panics to this iteration: the
        // acceptor must outlive any single bad accept.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_accept(stream, inner);
        }));
        if result.is_err() {
            inner.metrics.connections_refused.inc();
        }
    }
}

fn handle_accept(stream: TcpStream, inner: &Arc<Inner>) {
    if faultpoint::inject("net.accept") {
        // An injected accept fault drops the connection on the floor —
        // the client sees a close, the server keeps serving.
        inner.metrics.connections_refused.inc();
        return;
    }
    let acquired = {
        let mut slots = inner.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if *slots >= inner.max_connections {
            false
        } else {
            *slots += 1;
            true
        }
    };
    if !acquired {
        inner.metrics.connections_refused.inc();
        // Best-effort typed refusal so the client can tell "limit"
        // from a network failure; then close.
        let _ = wire::write_response(
            &mut &stream,
            &Response::Error {
                code: ErrorCode::ConnectionLimit,
                message: format!("all {} connection slots are busy", inner.max_connections),
            },
        );
        linger_close(&stream);
        return;
    }
    inner.metrics.connections_accepted.inc();
    inner.metrics.connections_active.inc();
    let conn_inner = Arc::clone(inner);
    let spawned = std::thread::Builder::new()
        .name("netserve-conn".to_string())
        .spawn(move || {
            // The guard lives outside the catch so an injected panic
            // inside the frame loop still frees the slot.
            let guard = SlotGuard {
                inner: Arc::clone(&conn_inner),
            };
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                connection_loop(&stream, &conn_inner);
            }));
            drop(guard);
        });
    if spawned.is_err() {
        // Thread spawn failed (resource exhaustion): release the slot.
        drop(SlotGuard {
            inner: Arc::clone(inner),
        });
        inner.metrics.connections_refused.inc();
    }
}

/// What the idle poll observed on a connection.
enum Poll {
    /// At least one byte is waiting — read a frame.
    Frame,
    /// The peer closed, or the server is draining — exit the loop.
    Close,
}

/// Waits for the next frame's first byte, polling the shutdown flag
/// every [`POLL_INTERVAL`] (the stream's read timeout).
fn poll_frame(stream: &TcpStream, inner: &Inner) -> Poll {
    let mut probe = [0u8; 1];
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Poll::Close;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Poll::Close,
            Ok(_) => return Poll::Frame,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Poll::Close,
        }
    }
}

/// A reader that rides out the poll-tick read timeouts *within* a
/// frame (the peer may write a frame in several segments) but gives
/// up after [`FRAME_PATIENCE`] or as soon as the server drains — a
/// stalled peer mid-frame must not hold shutdown hostage.
struct FrameReader<'a> {
    stream: &'a TcpStream,
    inner: &'a Inner,
    give_up_at: Instant,
}

impl Read for FrameReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.inner.shutdown.load(Ordering::SeqCst)
                        || Instant::now() >= self.give_up_at
                    {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "frame read timed out",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

fn connection_loop(stream: &TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        match poll_frame(stream, inner) {
            Poll::Close => return,
            Poll::Frame => {}
        }
        if faultpoint::inject("net.read") {
            // An injected read fault kills this connection, not the
            // server: the slot frees via the guard, the client sees a
            // close.
            return;
        }
        let mut reader = FrameReader {
            stream,
            inner,
            give_up_at: Instant::now() + FRAME_PATIENCE,
        };
        match wire::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(request)) => {
                inner.metrics.frames_in.inc();
                if !respond(stream, inner, &request) {
                    return;
                }
            }
            Err(error) => {
                inner.metrics.decode_errors.inc();
                // The stream framing can no longer be trusted:
                // best-effort typed error, then a lingering close so
                // the error frame survives the peer's unread bytes.
                let _ = write_frame(
                    stream,
                    inner,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: error.to_string(),
                    },
                );
                linger_close(stream);
                return;
            }
        }
    }
}

/// Writes one response frame, honouring the `net.write` fault point.
/// Returns `false` when the connection should close.
fn write_frame(stream: &TcpStream, inner: &Inner, response: &Response) -> bool {
    if faultpoint::inject("net.write") {
        return false;
    }
    match wire::write_response(&mut &*stream, response) {
        Ok(()) => {
            inner.metrics.frames_out.inc();
            true
        }
        Err(_) => false,
    }
}

/// Maps an engine failure to its wire error code.
fn engine_error_code(error: &graphhd::Error) -> ErrorCode {
    match error {
        graphhd::Error::ShutDown => ErrorCode::ShutDown,
        graphhd::Error::Overloaded => ErrorCode::Overloaded,
        graphhd::Error::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        graphhd::Error::TaskFailed => ErrorCode::TaskFailed,
        graphhd::Error::Poisoned => ErrorCode::Poisoned,
        _ => ErrorCode::Internal,
    }
}

fn engine_error(error: &graphhd::Error) -> Response {
    Response::Error {
        code: engine_error_code(error),
        message: error.to_string(),
    }
}

/// Handles one decoded request and writes the response. Returns
/// `false` when the connection should close.
fn respond(stream: &TcpStream, inner: &Arc<Inner>, request: &Request) -> bool {
    let response = match request {
        Request::Classify {
            model,
            deadline,
            graph,
        } => {
            return serve_model(stream, inner, model, |slot| {
                let served = slot.served.load();
                let result = match deadline {
                    Some(budget) => served.engine.classify_within(graph, *budget),
                    None => served.engine.classify(graph),
                };
                match result {
                    Ok(class) => Response::Class(class),
                    Err(e) => engine_error(&e),
                }
            });
        }
        Request::Scores {
            model,
            deadline,
            graph,
        } => {
            return serve_model(stream, inner, model, |slot| {
                let served = slot.served.load();
                let result = match deadline {
                    Some(budget) => served.engine.scores_within(graph, *budget),
                    None => served.engine.scores(graph),
                };
                match result {
                    Ok(scores) => Response::Scores(scores),
                    Err(e) => engine_error(&e),
                }
            });
        }
        Request::ClassifyBatch {
            model,
            deadline,
            graphs,
        } => {
            return serve_model(stream, inner, model, |slot| {
                let served = slot.served.load();
                let result = match deadline {
                    Some(budget) => served.engine.classify_batch_within(graphs, *budget),
                    None => served.engine.classify_batch(graphs),
                };
                match result {
                    Ok(classes) => Response::Classes(classes),
                    Err(e) => engine_error(&e),
                }
            });
        }
        Request::ModelInfo { model } => match inner.registry.info(model) {
            Some(info) => Response::Info(info),
            None => unknown_model(model),
        },
        Request::Stats => {
            let mut text = inner.metrics.registry.render_prometheus();
            text.push_str(&inner.registry.render_prometheus());
            Response::Stats(text)
        }
    };
    write_frame(stream, inner, &response)
}

fn unknown_model(model: &str) -> Response {
    Response::Error {
        code: ErrorCode::UnknownModel,
        message: format!("no model named `{model}` is hosted"),
    }
}

/// Routes a request to its model slot, times the handling into the
/// per-model `net_request_ns` histogram, and writes the response.
fn serve_model(
    stream: &TcpStream,
    inner: &Arc<Inner>,
    model: &str,
    handle: impl FnOnce(&crate::registry::ModelSlot) -> Response,
) -> bool {
    let Some(slot) = inner.registry.slot(model) else {
        return write_frame(stream, inner, &unknown_model(model));
    };
    let start = Instant::now();
    let response = handle(&slot);
    let keep_open = write_frame(stream, inner, &response);
    slot.net_request_ns.record_duration(start.elapsed());
    keep_open
}
