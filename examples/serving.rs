//! Serving lifecycle, end to end: train → snapshot to disk → reload into
//! a long-lived [`Engine`] → serve queries from multiple threads →
//! report throughput and the engine's own telemetry (typed stats,
//! Prometheus exposition, JSON snapshot).
//!
//! This is the deployment story of the GraphHD paper's "cheap enough to
//! serve online" pitch: the trainer and the server only share a file.
//!
//! Run with: `cargo run --release --example serving`

use datasets::{surrogate, StratifiedKFold};
use engine::Engine;
use graphcore::Graph;
use graphhd::{GraphHdConfig, GraphHdModel};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Trainer process ────────────────────────────────────────────────
    // Full surrogate-MUTAG (188 graphs), 80/20 split, paper-default
    // 10,000-dimensional configuration.
    let dataset = surrogate::by_name("MUTAG", 42).expect("known dataset");
    let folds = StratifiedKFold::new(5, 7)?.split(dataset.labels())?;
    let fold = &folds[0];
    let train_graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();

    let config = GraphHdConfig::builder().seed(42).build()?;
    let started = Instant::now();
    let model = GraphHdModel::fit(config, &train_graphs, &train_labels, dataset.num_classes())?;
    println!(
        "trained {} classes at d={} on {} graphs in {:.1} ms",
        model.num_classes(),
        config.dim,
        train_graphs.len(),
        started.elapsed().as_secs_f64() * 1e3,
    );

    // The deployable artifact: a versioned, endian-stable binary file.
    let path = std::env::temp_dir().join(format!("graphhd-serving-{}.ghd", std::process::id()));
    model.save(&path)?;
    println!(
        "snapshot v{}: {} bytes at {}",
        graphhd::SNAPSHOT_VERSION,
        std::fs::metadata(&path)?.len(),
        path.display(),
    );

    // ── Server process ─────────────────────────────────────────────────
    // Reload the artifact into an engine: bounded queue (backpressure),
    // batched dispatch onto the work-stealing pool, SIMD-blocked scoring.
    let served = Engine::builder()
        .queue_capacity(128)
        .max_batch(32)
        .from_snapshot(&path)?;
    std::fs::remove_file(&path)?;

    // Sanity: the served model is bit-identical to the trained one.
    let test_graphs: Vec<&Graph> = fold.test.iter().map(|&i| dataset.graph(i)).collect();
    let served_predictions = served.classify_batch(&test_graphs)?;
    assert_eq!(served_predictions, model.predict_all(&test_graphs));
    let hits = served_predictions
        .iter()
        .zip(fold.test.iter().map(|&i| dataset.label(i)))
        .filter(|(p, l)| **p == *l)
        .count();
    println!(
        "test accuracy over {} held-out graphs: {:.1}%",
        test_graphs.len(),
        100.0 * hits as f64 / test_graphs.len() as f64,
    );

    // ── Concurrent clients ─────────────────────────────────────────────
    // Four submitter threads × 250 queries each through one engine.
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 250;
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<(), graphhd::Error> {
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            let engine = served.clone();
            let queries = &test_graphs;
            handles.push(scope.spawn(move || -> Result<usize, graphhd::Error> {
                let mut answered = 0;
                for i in 0..QUERIES_PER_CLIENT {
                    let graph = queries[(client + i) % queries.len()];
                    let _class = engine.classify(graph)?;
                    answered += 1;
                }
                Ok(answered)
            }));
        }
        for handle in handles {
            handle.join().expect("client thread")?;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    let total = (CLIENTS * QUERIES_PER_CLIENT) as f64;
    println!(
        "served {total} queries from {CLIENTS} threads in {elapsed:.2} s \
         ({:.0} queries/s, {:.2} ms mean latency at full load)",
        total / elapsed,
        elapsed * 1e3 * CLIENTS as f64 / total,
    );

    // ── Observability ──────────────────────────────────────────────────
    // The same numbers an operator would scrape in production: the typed
    // stats surface, plus the registry rendered both ways. The rendering
    // is validated here, so CI running this example asserts the
    // exposition stays well-formed.
    let stats = served.stats();
    println!(
        "engine stats: accepted {} completed {} failed {} queue_depth {}",
        stats.accepted, stats.completed, stats.failed, stats.queue_depth,
    );
    if !stats.request_ns.is_empty() {
        println!(
            "request latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us \
             over {} requests",
            stats.request_ns.p50() as f64 / 1e3,
            stats.request_ns.p90() as f64 / 1e3,
            stats.request_ns.p99() as f64 / 1e3,
            stats.request_ns.max as f64 / 1e3,
            stats.request_ns.count,
        );
        println!(
            "queue wait: p50 {:.1} us, p99 {:.1} us; batches: mean {:.1} requests",
            stats.queue_wait_ns.p50() as f64 / 1e3,
            stats.queue_wait_ns.p99() as f64 / 1e3,
            stats.batch_size.mean(),
        );
    }

    let exposition = served.registry().render_prometheus();
    telemetry::validate_exposition(&exposition)
        .map_err(|why| format!("malformed Prometheus exposition: {why}"))?;
    println!(
        "prometheus exposition: {} well-formed lines ({} metrics)",
        exposition.lines().count(),
        served.registry().names().len(),
    );
    println!("json snapshot: {}", served.registry().render_json());

    served.shutdown();
    let drained = served.stats();
    assert_eq!(
        drained.queue_depth, 0,
        "drained shutdown leaves no request behind"
    );
    println!("engine drained and shut down");
    Ok(())
}
