//! Quickstart: train GraphHD on a synthetic two-class task and classify
//! unseen graphs.
//!
//! Run with: `cargo run --release --example quickstart`

use graphcore::generate;
use graphhd::{GraphHdConfig, GraphHdModel};
use prng::Xoshiro256PlusPlus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a labeled training set: class 0 = Erdős–Rényi noise,
    //    class 1 = preferential-attachment graphs (hub-dominated).
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..40 {
        graphs.push(generate::erdos_renyi(30, 0.12, &mut rng)?);
        labels.push(0u32);
        graphs.push(generate::barabasi_albert(30, 2, &mut rng)?);
        labels.push(1u32);
    }
    // 2. Train: the paper's full configuration is the default —
    //    10,000-dimensional bipolar hypervectors, 10 PageRank iterations.
    let model = GraphHdModel::fit(GraphHdConfig::default(), &graphs, &labels, 2)?;
    println!(
        "trained {} class vectors of dimension {}",
        model.num_classes(),
        model.encoder().config().dim
    );

    // 3. Classify unseen graphs and inspect similarity scores.
    let mystery_er = generate::erdos_renyi(30, 0.12, &mut rng)?;
    let mystery_ba = generate::barabasi_albert(30, 2, &mut rng)?;
    for (name, graph, expected) in [
        ("erdos-renyi", &mystery_er, 0u32),
        ("barabasi-albert", &mystery_ba, 1u32),
    ] {
        let scores = model.scores(graph);
        let predicted = model.predict(graph);
        println!(
            "{name}: predicted class {predicted} (expected {expected}), \
             cosine scores {scores:?}"
        );
    }

    // 4. Measure held-out accuracy on a fresh batch.
    let mut hits = 0;
    let trials = 50;
    for _ in 0..trials {
        if model.predict(&generate::erdos_renyi(30, 0.12, &mut rng)?) == 0 {
            hits += 1;
        }
        if model.predict(&generate::barabasi_albert(30, 2, &mut rng)?) == 1 {
            hits += 1;
        }
    }
    println!(
        "held-out accuracy: {:.1}%",
        100.0 * f64::from(hits) / (2.0 * f64::from(trials))
    );
    Ok(())
}
