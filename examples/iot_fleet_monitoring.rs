//! IoT fleet monitoring: the resource-constrained scenario that motivates
//! the paper (Section I cites IoT malware detection on communication
//! graphs). A hub ingests device communication graphs in small batches,
//! learns online with GraphHD's retraining extension, and keeps working
//! when its associative memory suffers bit-level faults.
//!
//! Run with: `cargo run --release --example iot_fleet_monitoring`

use graphcore::{generate, Graph};
use graphhd::{noise, GraphHdConfig, GraphHdModel};
use prng::{WordRng, Xoshiro256PlusPlus};

/// Benign traffic: sparse peer-to-peer chatter (Erdős–Rényi).
fn benign(rng: &mut Xoshiro256PlusPlus) -> Graph {
    let n = 24 + rng.usize_below(16);
    generate::erdos_renyi(n, 0.08, rng).expect("valid probability")
}

/// Botnet traffic: command-and-control hubs (preferential attachment).
fn botnet(rng: &mut Xoshiro256PlusPlus) -> Graph {
    let n = 24 + rng.usize_below(16);
    generate::barabasi_albert(n, 2, rng).expect("valid attachment")
}

fn batch(rng: &mut Xoshiro256PlusPlus, size: usize) -> (Vec<Graph>, Vec<u32>) {
    let mut graphs = Vec::with_capacity(size);
    let mut labels = Vec::with_capacity(size);
    for _ in 0..size {
        if rng.bernoulli(0.5) {
            graphs.push(benign(rng));
            labels.push(0);
        } else {
            graphs.push(botnet(rng));
            labels.push(1);
        }
    }
    (graphs, labels)
}

fn accuracy(model: &GraphHdModel, graphs: &[Graph], labels: &[u32]) -> f64 {
    let predictions = model.predict_batch(graphs);
    predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count() as f64
        / labels.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);

    // Cold start: a small bootstrap sample labeled by the security team.
    let (boot_graphs, boot_labels) = batch(&mut rng, 30);
    let mut model = GraphHdModel::fit(GraphHdConfig::default(), &boot_graphs, &boot_labels, 2)?;
    println!("bootstrap model trained on {} graphs", boot_graphs.len());

    // Online operation: batches stream in; the hub encodes once and
    // retrains only on its mistakes (cheap integer updates — the reason
    // HDC suits edge hardware).
    for round in 1..=5 {
        let (graphs, labels) = batch(&mut rng, 40);
        let before = accuracy(&model, &graphs, &labels);
        let encodings = model.encoder().encode_all(&graphs);
        let report = model.retrain(&encodings, &labels, 3);
        let after = accuracy(&model, &graphs, &labels);
        println!(
            "round {round}: accuracy {before:.2} -> {after:.2} \
             (mistakes per epoch: {:?})",
            report.epoch_errors
        );
    }

    // Fault injection: flip 10% of the class-vector bits, as if the
    // device memory degraded, and check the model still works.
    let (eval_graphs, eval_labels) = batch(&mut rng, 100);
    let clean = accuracy(&model, &eval_graphs, &eval_labels);
    let noisy = noise::accuracy_under_model_noise(&model, &eval_graphs, &eval_labels, 0.10, 7);
    println!("\nfresh-traffic accuracy: clean {clean:.2}, with 10% flipped bits {noisy:.2}");
    println!("holographic representations degrade gracefully — the HDC robustness claim.");
    Ok(())
}
