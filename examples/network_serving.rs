//! The network serving tier, end to end: train two models → publish
//! versioned snapshots → serve both over loopback TCP from one
//! process → drive client traffic from multiple connections →
//! hot-swap one model to a freshly trained snapshot version **while
//! traffic is in flight** → verify zero failed requests and scrape
//! the merged fleet telemetry over the wire.
//!
//! This is the "millions of users" story on top of `examples/serving.rs`:
//! many models, many clients, one process, no restart to deploy a new
//! model version.
//!
//! Run with: `cargo run --release --example network_serving`

use datasets::{surrogate, StratifiedKFold};
use engine::Engine;
use graphcore::Graph;
use graphhd::{GraphHdConfig, GraphHdModel};
use netserve::{Client, ModelRegistry, ServerBuilder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn train(dataset_name: &str, seed: u64) -> Result<GraphHdModel, Box<dyn std::error::Error>> {
    let dataset = surrogate::by_name(dataset_name, 42).expect("known dataset");
    let folds = StratifiedKFold::new(5, 7)?.split(dataset.labels())?;
    let fold = &folds[0];
    let graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
    let labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();
    let config = GraphHdConfig::builder().seed(seed).build()?;
    let started = Instant::now();
    let model = GraphHdModel::fit(config, &graphs, &labels, dataset.num_classes())?;
    println!(
        "trained {dataset_name} (seed {seed}): {} classes, {} graphs, {:.1} ms",
        model.num_classes(),
        graphs.len(),
        started.elapsed().as_secs_f64() * 1e3,
    );
    Ok(model)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Trainer: two models, one published as a versioned snapshot ──
    let snapshot_dir =
        std::env::temp_dir().join(format!("graphhd-network-serving-{}", std::process::id()));
    std::fs::create_dir_all(&snapshot_dir)?;
    let v1 = train("MUTAG", 42)?.save_version(&snapshot_dir, 4)?;
    println!(
        "published mutag snapshot v{v1} to {}",
        snapshot_dir.display()
    );

    // ── One serving process, two named models ──────────────────────
    let registry = Arc::new(ModelRegistry::new());
    let served_version = registry.insert_versioned(
        "mutag",
        &snapshot_dir,
        Engine::builder(), // fleet defaults: shared pool, Block policy
    )?;
    registry.insert(
        "enzymes",
        Engine::builder().from_model(train("ENZYMES", 42)?)?,
    )?;
    println!(
        "serving models {:?} (mutag at v{served_version})",
        registry.names()
    );

    let server = ServerBuilder::new(Arc::clone(&registry))
        .from_env()
        .serve()?;
    let addr = server.local_addr();
    println!("listening on {addr}");

    // ── Client traffic: four connections hammering both models ─────
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let swap_observed = Arc::new(AtomicBool::new(false));
    let traffic_started = Instant::now();
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let swap_observed = Arc::clone(&swap_observed);
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let dataset_name = if worker % 2 == 0 { "MUTAG" } else { "ENZYMES" };
                let model = if worker % 2 == 0 { "mutag" } else { "enzymes" };
                let dataset = surrogate::by_name(dataset_name, 42).expect("known dataset");
                let mut failures = 0u64;
                let mut index = worker;
                while !stop.load(Ordering::Relaxed) {
                    let graph = dataset.graph(index % dataset.len());
                    index += 1;
                    // The hot-swap contract: every request is answered.
                    match client.classify(model, graph) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("worker {worker}: FAILED request: {e}");
                            failures += 1;
                        }
                    }
                    if model == "mutag" {
                        let info = client.model_info(model).map_err(|e| e.to_string())?;
                        if info.version == 2 {
                            swap_observed.store(true, Ordering::Relaxed);
                        }
                    }
                }
                Ok(failures)
            })
        })
        .collect();

    // ── Hot-swap mid-traffic ───────────────────────────────────────
    while completed.load(Ordering::Relaxed) < 200 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let in_flight_before = completed.load(Ordering::Relaxed);
    let v2 = train("MUTAG", 1337)?.save_version(&snapshot_dir, 4)?;
    let swapped = registry.reload("mutag")?;
    println!(
        "hot-swapped mutag to v{v2} after {in_flight_before} requests (reload -> {swapped:?})"
    );
    assert_eq!(swapped, Some(2), "the new version must be picked up");

    // Keep traffic flowing until a client *observes* the new version.
    while !swap_observed.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_failures = 0u64;
    for worker in workers {
        total_failures += worker.join().expect("worker must not panic")?;
    }
    let total = completed.load(Ordering::Relaxed);
    let elapsed = traffic_started.elapsed();
    println!(
        "traffic: {total} requests over {} connections in {:.2} s ({:.0} qps), {total_failures} failed",
        4,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
    );
    assert_eq!(
        total_failures, 0,
        "zero-downtime means zero failed requests across the swap"
    );

    // ── Fleet telemetry, scraped over the wire ─────────────────────
    let mut client = Client::connect(addr)?;
    let info = client.model_info("mutag")?;
    println!(
        "mutag now serving v{} (d={}, {} classes)",
        info.version, info.dim, info.num_classes
    );
    assert_eq!(info.version, 2);
    let scrape = client.stats()?;
    telemetry::validate_exposition(&scrape).expect("merged scrape must parse");
    for line in scrape.lines().filter(|line| {
        line.starts_with("net_connections")
            || line.starts_with("net_frames")
            || line.starts_with("net_request_ns_count")
            || line.starts_with("engine_requests_completed")
    }) {
        println!("  {line}");
    }

    // ── Graceful drain ─────────────────────────────────────────────
    drop(client);
    server.shutdown();
    let stats = server.stats();
    println!(
        "drained: {} connections served, {} frames in, {} frames out, {} decode errors",
        stats.connections_accepted, stats.frames_in, stats.frames_out, stats.decode_errors
    );
    assert_eq!(stats.connections_active, 0, "drain left an open slot");
    std::fs::remove_dir_all(&snapshot_dir).ok();
    println!("ok");
    Ok(())
}
