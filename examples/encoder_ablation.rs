//! Encoder ablation: the paper's centrality recipe against the
//! VS-Graph-style vertex-similarity and CiliaGraph-style edge-weighted
//! strategies, under the shared CV harness on surrogate-MUTAG.
//!
//! Run with: `cargo run --release --example encoder_ablation`
//!
//! CI runs this binary; the asserts at the bottom keep the ablation
//! honest (every strategy beats chance, the paper recipe stays on top
//! of this roster).

use datasets::harness::{evaluate_cv, CvProtocol};
use datasets::surrogate;
use graphhd::{EncoderKind, GraphHdClassifier, GraphHdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("MUTAG").ok_or("unknown dataset")?,
        17,
        90,
    );
    let protocol = CvProtocol {
        folds: 3,
        repetitions: 2,
        seed: 5,
    };

    println!(
        "encoder ablation on surrogate-MUTAG ({} graphs, 3-fold CV x2):",
        dataset.len()
    );
    println!("{:<20} {:>9} {:>8}", "encoder", "accuracy", "std");
    let mut results = Vec::new();
    for kind in [
        EncoderKind::Centrality,
        EncoderKind::vertex_similarity(),
        EncoderKind::edge_weighted(),
    ] {
        let config = GraphHdConfig::builder()
            .dim(4096)
            .seed(9)
            .with_encoder(kind)
            .build()?;
        let mut classifier = GraphHdClassifier::new(config);
        let report = evaluate_cv(&mut classifier, &dataset, &protocol)?;
        let summary = report.accuracy();
        println!(
            "{:<20} {:>8.1}% {:>7.1}%",
            kind.name(),
            100.0 * summary.mean,
            100.0 * summary.std_dev
        );
        results.push((kind, summary.mean));
    }

    // Tolerance floors mirroring `tests/extensions.rs`: measured means
    // are centrality ~0.64-0.69, edge-weighted ~0.60-0.63 and
    // vertex-similarity ~0.54-0.58 on this surrogate.
    for &(kind, accuracy) in &results {
        let floor = match kind {
            EncoderKind::Centrality => 0.60,
            EncoderKind::EdgeWeighted { .. } => 0.55,
            EncoderKind::VertexSimilarity { .. } => 0.50,
        };
        assert!(
            accuracy >= floor,
            "{} accuracy {accuracy:.4} fell below its floor {floor}",
            kind.name()
        );
    }
    assert!(
        results.iter().all(|&(_, a)| results[0].1 >= a),
        "the paper recipe should lead this roster"
    );
    println!("all strategies within tolerance");
    Ok(())
}
