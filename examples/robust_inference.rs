//! Robustness curve: how GraphHD's accuracy degrades as the stored class
//! vectors (or incoming query encodings) suffer random bit flips — the
//! fault model of HDC hardware papers the paper builds its robustness
//! claim on.
//!
//! Run with: `cargo run --release --example robust_inference`

use datasets::{surrogate, StratifiedKFold};
use graphcore::Graph;
use graphhd::{noise, GraphHdConfig, GraphHdModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = surrogate::generate_surrogate_sized(
        surrogate::spec_by_name("PROTEINS").expect("known dataset"),
        2022,
        160,
    );
    println!("{}\n", dataset.stats());

    let folds = StratifiedKFold::new(5, 1)?.split(dataset.labels())?;
    let fold = &folds[0];
    let train_graphs: Vec<&Graph> = fold.train.iter().map(|&i| dataset.graph(i)).collect();
    let train_labels: Vec<u32> = fold.train.iter().map(|&i| dataset.label(i)).collect();
    let test_graphs: Vec<&Graph> = fold.test.iter().map(|&i| dataset.graph(i)).collect();
    let test_labels: Vec<u32> = fold.test.iter().map(|&i| dataset.label(i)).collect();

    let model = GraphHdModel::fit(
        GraphHdConfig::default(),
        &train_graphs,
        &train_labels,
        dataset.num_classes(),
    )?;

    println!(
        "{:>10} {:>22} {:>22}",
        "flip rate", "class-vector noise", "query noise"
    );
    let rates = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.45, 0.49];
    for (rate, model_acc, query_acc) in
        noise::noise_sweep(&model, &test_graphs, &test_labels, &rates, 7)
    {
        println!(
            "{:>9.0}% {:>22.3} {:>22.3}",
            rate * 100.0,
            model_acc,
            query_acc
        );
    }
    println!(
        "\nEvery dimension carries the same information (holographic \
         representation), so accuracy falls gradually rather than cliff-like; \
         at 50% flips the vectors are pure noise and accuracy reaches chance."
    );
    Ok(())
}
