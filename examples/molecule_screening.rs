//! Molecule screening: the MUTAG-style scenario from the paper's
//! evaluation — classify small molecular graphs by structure alone,
//! comparing GraphHD against a WL-kernel SVM under the paper's
//! cross-validation protocol.
//!
//! By default this runs on the built-in MUTAG surrogate. Pass a directory
//! containing real TUDataset files to run on the original data:
//!
//! ```text
//! cargo run --release --example molecule_screening -- /data/MUTAG MUTAG
//! ```

use baselines::{WlSvmClassifier, WlSvmConfig};
use datasets::harness::{evaluate_cv, CvProtocol, GraphClassifier};
use datasets::{surrogate, GraphDataset};
use graphhd::GraphHdClassifier;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let dataset: GraphDataset = match args.get(1) {
        Some(dir) => {
            let name = args.get(2).map_or("MUTAG", String::as_str);
            println!("loading TUDataset {name} from {dir} ...");
            let data = graphcore::io::load_tudataset(Path::new(dir), name)?;
            GraphDataset::from_tu(name, data)?
        }
        None => {
            println!("no dataset directory given; using the MUTAG surrogate");
            surrogate::generate_surrogate_sized(
                surrogate::spec_by_name("MUTAG").expect("known dataset"),
                2022,
                120,
            )
        }
    };
    let stats = dataset.stats();
    println!("{stats}\n");

    let protocol = CvProtocol {
        folds: 5,
        repetitions: 1,
        seed: 7,
    };
    let mut methods: Vec<Box<dyn GraphClassifier>> = vec![
        Box::new(GraphHdClassifier::default()),
        Box::new(WlSvmClassifier::new(WlSvmConfig::fast_subtree())),
    ];
    println!(
        "{:<10} {:>10} {:>14} {:>16}",
        "method", "accuracy", "train s/fold", "infer s/graph"
    );
    for method in methods.iter_mut() {
        let report = evaluate_cv(method.as_mut(), &dataset, &protocol)?;
        println!(
            "{:<10} {:>10.3} {:>14.4} {:>16.3e}",
            report.method,
            report.accuracy().mean,
            report.train_seconds().mean,
            report.infer_seconds_per_graph().mean,
        );
    }
    println!(
        "\nGraphHD trades a little accuracy for a large training-speed win — \
         the paper's core claim."
    );
    Ok(())
}
