//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! The evaluation environment has no network access, so the real
//! `proptest` cannot be fetched from a registry. This shim implements the
//! subset of the API the workspace's property tests use — the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), the [`Strategy`] trait with `prop_map`, ranges, tuples,
//! [`Just`], [`prop_oneof!`], `prop::collection::vec`, [`any`] and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Case generation is deterministic: the RNG stream is a pure function of
//! the test's module path and name, so failures reproduce across runs and
//! machines. There is no shrinking; a failing case panics with the
//! ordinary assertion message. Because the shim is a path dependency
//! *named* `proptest`, swapping in the real crate later is a one-line
//! manifest change.

use prng::{SplitMix64, WordRng, Xoshiro256PlusPlus};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Deterministic RNG driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(Xoshiro256PlusPlus);

impl TestRng {
    /// Creates a generator whose stream is a pure function of `label`
    /// (the test's `module_path!::name`), so every run explores the same
    /// cases.
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xA076_1D64_78BD_642Fu64;
        for &b in label.as_bytes() {
            seed = SplitMix64::new(seed ^ u64::from(b)).next_u64();
        }
        Self(Xoshiro256PlusPlus::seed_from_u64(seed))
    }
}

impl WordRng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (the same knob the real crate honours).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Values uniformly sampleable from a half-open or inclusive range.
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[start, end)`, or `[start, end]` when
    /// `inclusive`.
    fn sample_range(rng: &mut TestRng, start: Self, end: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut TestRng, start: Self, end: Self, inclusive: bool) -> Self {
                let width = (end as u64) - (start as u64);
                // Full 64-bit domain (`0..=MAX` for a 64-bit type): the
                // span would wrap to 0, so draw a raw word instead.
                if inclusive && width == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                let span = width + u64::from(inclusive);
                assert!(span > 0, "empty range strategy");
                start + rng.u64_below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut TestRng, start: Self, end: Self, inclusive: bool) -> Self {
                let width = (i128::from(end) - i128::from(start)) as u64;
                // Full 64-bit domain (`MIN..=MAX` for a 64-bit type): the
                // span would wrap to 0, so draw a raw word instead.
                if inclusive && width == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                let span = width + u64::from(inclusive);
                assert!(span > 0, "empty range strategy");
                (i128::from(start) + i128::from(rng.u64_below(span))) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, usize, u64);
impl_sample_uniform_int!(i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut TestRng, start: Self, end: Self, _inclusive: bool) -> Self {
        start + rng.next_f64() * (end - start)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Mirror of the real crate's `proptest::prop` module tree.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use prng::WordRng;

        /// Strategy for `Vec`s with element strategy `S`; see [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// A `Vec` of `size.start..size.end` elements drawn from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(!size.is_empty(), "empty size range for collection::vec");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.size.end - self.size.start;
                let len = self.size.start + rng.usize_below(span.max(1));
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Support runtime shared by the [`proptest!`] and [`prop_assume!`]
/// macros (macro hygiene prevents them from sharing a local variable).
#[doc(hidden)]
pub mod __rt {
    use std::cell::Cell;

    thread_local! {
        static REJECTIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// Clears the rejection counter at the start of a test.
    pub fn reset_rejections() {
        REJECTIONS.with(|r| r.set(0));
    }

    /// Records one `prop_assume!` rejection.
    pub fn record_rejection() {
        REJECTIONS.with(|r| r.set(r.get() + 1));
    }

    /// Total rejections recorded since the last reset.
    #[must_use]
    pub fn rejections() -> u64 {
        REJECTIONS.with(Cell::get)
    }
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
///
/// Cases rejected by [`prop_assume!`] are retried rather than counted;
/// like the real crate, the test aborts if the assumption rejects too
/// many candidates (here: `max(1024, 16 × cases)` rejections).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_case_rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                $crate::__rt::reset_rejections();
                let max_rejects = u64::from(config.cases).saturating_mul(16).max(1024);
                let mut proptest_cases_done: u32 = 0;
                while proptest_cases_done < config.cases {
                    assert!(
                        $crate::__rt::rejections() <= max_rejects,
                        "prop_assume! rejected {} candidate cases (cap {max_rejects}); \
                         the assumption is too strict to explore the strategy",
                        $crate::__rt::rejections(),
                    );
                    let ($($pat,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut proptest_case_rng),)+
                    );
                    $body
                    proptest_cases_done += 1;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Retries the current case when `cond` does not hold.
///
/// Must appear directly inside a `proptest!` body (it expands to
/// `continue` targeting the case loop). Rejections do not consume the
/// case budget, but the test aborts past a global rejection cap.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::__rt::record_rejection();
            continue;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use prng::WordRng;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let u = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&u));
            let i = Strategy::generate(&(-2i32..3), &mut rng);
            assert!((-2..3).contains(&i));
            let f = Strategy::generate(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = TestRng::deterministic("full-domain");
        let mut seen_high_bit = false;
        for _ in 0..64 {
            let _ = Strategy::generate(&(i64::MIN..=i64::MAX), &mut rng);
            let u = Strategy::generate(&(0u64..=u64::MAX), &mut rng);
            seen_high_bit |= u >> 63 == 1;
            let _ = Strategy::generate(&(0usize..=usize::MAX), &mut rng);
        }
        assert!(seen_high_bit, "full-domain draws must cover the upper half");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies((a, b) in (0usize..5, any::<u64>()), c in prop_oneof![Just(1usize), 2usize..4]) {
            prop_assume!(b != 0);
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&c));
            prop_assert_ne!(b, 0);
        }

        #[test]
        fn rejected_cases_are_retried_not_consumed(x in 0usize..10) {
            // Roughly half the draws are rejected; the cap (>= 1024) is
            // far above 16 cases' worth of retries, so the test must
            // still complete its full case budget.
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        #[should_panic(expected = "prop_assume! rejected")]
        fn impossible_assumption_aborts_instead_of_passing_empty(x in 0usize..10) {
            prop_assume!(x > 10);
            prop_assert!(false, "unreachable: the assumption can never hold");
        }

        #[test]
        fn collections_have_requested_sizes(v in prop::collection::vec((0u32..4, 0u32..4), 1..60)) {
            prop_assert!(!v.is_empty() && v.len() < 60);
        }
    }
}
