//! Minimal, self-contained stand-in for the `criterion` crate.
//!
//! The evaluation environment has no network access, so the real
//! `criterion` cannot be fetched from a registry. This shim implements
//! the subset of the API the workspace's benches use — [`Criterion`],
//! benchmark groups with `sample_size` / `measurement_time`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a
//! warmup-then-sample measurement loop that prints one
//! `name  time: [.. median ..]`-style line per benchmark.
//!
//! `cargo bench` passes `--bench`, which is accepted and ignored;
//! `cargo bench -- --test` (or `cargo test --benches`) runs every
//! benchmark body exactly once as a smoke test, matching the real
//! crate's behaviour. Because the shim is a path dependency *named*
//! `criterion`, swapping in the real crate later is a one-line manifest
//! change.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
    matched: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filter: None,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            matched: 0,
        }
    }
}

impl Drop for Criterion {
    /// A filter that matched nothing is almost always a mistyped name
    /// (or the stray value of an unrecognized flag); don't let the run
    /// end silently.
    fn drop(&mut self) {
        if let Some(filter) = &self.filter {
            if self.matched == 0 {
                eprintln!("warning: benchmark filter {filter:?} matched no benchmarks");
            }
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: `--test` switches to one-shot
    /// smoke mode, a bare string filters benchmarks by substring, and
    /// harness flags such as `--bench` are ignored (with a warning for
    /// flags this shim does not know).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "--quick" => self.test_mode = true,
                // Flags (with value) the real harness accepts; skip them.
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" | "--profile-time" => {
                    let _ = args.next();
                }
                // Valueless flags cargo or the real harness pass.
                "--bench" | "--verbose" | "--noplot" | "--discard-baseline" => {}
                other if other.starts_with('-') => {
                    eprintln!(
                        "warning: criterion shim ignoring unknown flag {other:?}; if it \
                         takes a value, that value will be treated as a name filter"
                    );
                }
                other => {
                    eprintln!("filtering benchmarks matching {other:?}");
                    self.filter = Some(other.to_string());
                }
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (test_mode, sample_size, measurement_time) =
            (self.test_mode, self.sample_size, self.measurement_time);
        self.run_one(&id.into(), test_mode, sample_size, measurement_time, f);
    }

    fn run_one<F>(
        &mut self,
        id: &str,
        test_mode: bool,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        self.matched += 1;
        let mut bencher = Bencher {
            test_mode,
            sample_size,
            measurement_time,
            median_ns: None,
        };
        f(&mut bencher);
        if test_mode {
            println!("{id}: ok (smoke)");
        } else if let Some(ns) = bencher.median_ns {
            println!("{id}  time: [{}]", format_ns(ns));
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `GROUP/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let (test_mode, n, t) = (
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
        );
        self.criterion.run_one(&full, test_mode, n, t, &mut f);
    }

    /// Benchmarks `f` under `GROUP/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let (test_mode, n, t) = (
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
        );
        self.criterion
            .run_one(&full, test_mode, n, t, |b| f(b, input));
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier with a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into an id string.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times a closure; handed to every benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measures `f`: one warmup/calibration phase sizing the batch so a
    /// sample takes roughly `measurement_time / sample_size`, then
    /// `sample_size` timed batches; records the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: double the batch until it runs long enough to trust.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 30 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 2;
        };
        let sample_target_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = (sample_target_ns / per_iter_ns.max(1.0)).ceil().max(1.0) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines `pub fn $name()` running each target against a fresh
/// [`Criterion`] configured from the command line.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(
            BenchmarkId::new("bind", 1024).into_benchmark_id(),
            "bind/1024"
        );
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion::default();
        c.test_mode = true;
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1));
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_records_a_median() {
        let mut c = Criterion::default();
        c.sample_size = 3;
        c.measurement_time = Duration::from_millis(30);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        group.finish();
    }
}
